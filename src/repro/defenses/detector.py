"""Statistical adversarial-fingerprint detector: the online serving guard.

Adversarially perturbed fingerprints leave the manifold of physically
plausible RSS patterns: a crafted ±ε shift on a subset of APs moves the query
away from every reference fingerprint the building can actually produce.  The
detector exploits exactly that — it memorises the per-reference-point mean
fingerprints of the offline survey, scores an online query by its mean
absolute deviation from the *nearest* reference, and calibrates the flagging
threshold on the survey's own score distribution (``target_fpr`` controls the
clean false-positive budget, ``margin`` adds headroom for device
heterogeneity).

The guard is cheap — one ``(batch, classes, aps)`` broadcast per request — so
it rides in front of the serving gateway with single-digit-percent latency
overhead (``benchmarks/bench_defenses.py`` gates < 10 %), counts flagged rows
on ``GET /metrics`` in ``action="monitor"`` mode, and aborts the request with
:class:`~repro.defenses.base.GuardRejectedError` (HTTP 403) in
``action="reject"`` mode.
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from ..data.fingerprint import FingerprintDataset
from ..registry import register_defense
from .base import Defense, GuardReport

__all__ = ["FingerprintDetectorDefense"]


@register_defense(
    "detector",
    tags=("inference", "detector"),
    aliases=("fingerprint-detector",),
)
class FingerprintDetectorDefense(Defense):
    """Nearest-reference deviation detector for adversarial fingerprints.

    Parameters
    ----------
    target_fpr:
        Calibration quantile: the fraction of *clean survey* fingerprints
        allowed above the raw threshold (before ``margin``).
    margin:
        Multiplicative headroom on the calibrated threshold, absorbing device
        heterogeneity the survey under-represents.
    action:
        ``"monitor"`` (default) only flags and counts; ``"reject"`` makes the
        serving layer abort flagged requests with HTTP 403.
    """

    name = "detector"
    hardens_training = False
    guards_inference = True

    #: Rows scored per chunk when calibrating on campaign-sized surveys.
    _CHUNK = 1024

    def __init__(
        self,
        seed: int = 0,
        target_fpr: float = 0.01,
        margin: float = 1.25,
        action: str = "monitor",
    ) -> None:
        super().__init__(seed)
        if not 0.0 < target_fpr < 1.0:
            raise ValueError("target_fpr must be in (0, 1)")
        if margin <= 0:
            raise ValueError("margin must be positive")
        if action not in ("monitor", "reject"):
            raise ValueError("action must be 'monitor' or 'reject'")
        self.target_fpr = float(target_fpr)
        self.margin = float(margin)
        self.action = action
        self._references: np.ndarray | None = None
        self._threshold: float | None = None

    def config(self) -> Dict[str, object]:
        # action is security-relevant: losing it across persistence would
        # silently downgrade a rejecting guard to monitor-only.
        return {
            "target_fpr": self.target_fpr,
            "margin": self.margin,
            "action": self.action,
        }

    # -- guard protocol --------------------------------------------------
    @property
    def guard_is_fitted(self) -> bool:
        return self._references is not None and self._threshold is not None

    @property
    def rejects(self) -> bool:
        return self.action == "reject"

    def fit_guard(self, dataset: FingerprintDataset) -> "FingerprintDetectorDefense":
        """Calibrate references and threshold on the offline survey."""
        features = dataset.features
        labels = dataset.labels
        num_classes = dataset.num_classes
        references = []
        for class_index in range(num_classes):
            mask = labels == class_index
            if mask.any():
                references.append(features[mask].mean(axis=0))
        if not references:
            raise ValueError("cannot calibrate a detector on an empty survey")
        self._references = np.asarray(references, dtype=np.float64)
        scores = self.scores(features)
        self._threshold = float(
            np.quantile(scores, 1.0 - self.target_fpr) * self.margin
        )
        return self

    def scores(self, features: np.ndarray) -> np.ndarray:
        """Per-row anomaly score: mean |Δ| to the nearest reference fingerprint."""
        if self._references is None:
            raise RuntimeError("detector must be fitted (fit_guard) before scoring")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features[None, :]
        if features.shape[0] == 0:
            # An empty batch may arrive shaped (0, 0); broadcasting it
            # against the references would fail, and there is nothing to score.
            return np.zeros(0, dtype=np.float64)
        if features.shape[0] <= self._CHUNK:
            # Serving-sized batches take the direct path — one broadcast, no
            # preallocation — keeping single-request guard overhead in the
            # tens of microseconds.
            deviations = np.abs(
                features[:, None, :] - self._references[None, :, :]
            ).mean(axis=2)
            return deviations.min(axis=1)
        out = np.empty(features.shape[0], dtype=np.float64)
        for start in range(0, features.shape[0], self._CHUNK):
            chunk = features[start : start + self._CHUNK]
            deviations = np.abs(
                chunk[:, None, :] - self._references[None, :, :]
            ).mean(axis=2)
            out[start : start + chunk.shape[0]] = deviations.min(axis=1)
        return out

    def guard(self, features: np.ndarray) -> GuardReport:
        if not self.guard_is_fitted:
            raise RuntimeError("detector must be fitted (fit_guard) before guarding")
        features = np.asarray(features, dtype=np.float64)
        scores = self.scores(features)
        return GuardReport(
            features=features,
            flagged=scores > self._threshold,
            scores=scores,
        )

    @property
    def threshold(self) -> float:
        if self._threshold is None:
            raise RuntimeError("detector must be fitted (fit_guard) first")
        return self._threshold

    # -- persistence -----------------------------------------------------
    def guard_state_arrays(self) -> Dict[str, np.ndarray]:
        if not self.guard_is_fitted:
            raise RuntimeError("cannot export an unfitted detector guard")
        return {
            "references": self._references,
            "threshold": np.array([self._threshold], dtype=np.float64),
        }

    def load_guard_state(
        self, arrays: Mapping[str, np.ndarray]
    ) -> "FingerprintDetectorDefense":
        self._references = np.asarray(arrays["references"], dtype=np.float64)
        self._threshold = float(np.asarray(arrays["threshold"]).ravel()[0])
        return self
