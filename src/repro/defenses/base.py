"""Defense interface and declarative references: the fourth registry axis.

The paper's central contribution is a *defense* — curriculum adversarial
learning hardens a localizer against the FGSM/PGD/MIM/MITM attack grid — and
this package turns defenses into first-class pluggable components alongside
models, attacks and robustness scenarios, completing the experiment matrix
(model × attack × scenario × **defense**).

A defense may act at either (or both) of two points in a model's life:

* **training time** — :meth:`Defense.wrap_training` replaces the plain
  ``model.fit(dataset)`` call of a training work unit, hardening how the model
  is fitted (curriculum adversarial training, PGD adversarial training, noise
  augmentation).  Set ``hardens_training = True``.
* **inference time** — :meth:`Defense.guard` screens online fingerprints
  before they reach the model (the statistical adversarial-fingerprint
  detector).  Set ``guards_inference = True``; the guard is fitted once via
  :meth:`Defense.fit_guard` on an offline survey, travels with the published
  service artifact through ``guard_state_arrays``/``load_guard_state``, and is
  exercised per request by :class:`repro.serve.Gateway` with flagged/rejected
  counters on ``GET /metrics``.

Defenses are registered with :func:`repro.registry.register_defense` and
referenced declaratively through :class:`DefenseSpec` — in
:class:`repro.api.ExperimentSpec` (``defenses=("curriculum",)``), on the CLI
(``repro run --defense curriculum``), and in the execution engine, where a
defended training unit is cached content-addressed under a key embedding the
full defense spec (``jobs=1`` ≡ ``jobs=N``, cold ≡ warm cache).

Adding a defense family::

    from repro.registry import register_defense
    from repro.defenses import Defense

    @register_defense("distillation", tags=("training",))
    class DistillationDefense(Defense):
        name = "distillation"
        hardens_training = True

        def wrap_training(self, model, dataset):
            ...
            return model
"""

from __future__ import annotations

import abc
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..data.fingerprint import FingerprintDataset
from ..interfaces import Localizer
from ..registry import DEFENSES, make_defense

__all__ = [
    "DefenseError",
    "GuardRejectedError",
    "GuardReport",
    "Defense",
    "DefenseSpec",
    "NoDefense",
    "require_trainable",
    "override_epochs",
]


def require_trainable(model: Localizer, defense: str) -> None:
    """Assert ``model`` supports the generic defended-training protocol.

    The training-time defenses interleave hardened phases via the model's
    own gradients, a ``continue_training`` hook, and a mutable ``epochs``
    budget; anything else gets a clear error naming the missing capability
    (shared by every defense so the contract can only drift in one place).
    """
    if not (
        hasattr(model, "loss_gradient")
        and callable(getattr(model, "continue_training", None))
        and hasattr(model, "epochs")
    ):
        raise DefenseError(
            f"defense '{defense}' needs a gradient-capable localizer "
            "(loss_gradient + continue_training + an epochs budget); "
            f"'{getattr(model, 'name', type(model).__name__)}' does not qualify"
        )


@contextmanager
def override_epochs(model: Localizer, epochs: int) -> Iterator[None]:
    """Temporarily rebudget ``model.epochs`` (restored even on failure)."""
    original = model.epochs
    model.epochs = epochs
    try:
        yield
    finally:
        model.epochs = original


class DefenseError(TypeError):
    """A defense cannot be applied to the given model or request."""


class GuardRejectedError(RuntimeError):
    """An enforcing inference guard rejected a request.

    Raised by :meth:`repro.api.LocalizationService.localize` when the attached
    guard runs in ``action="reject"`` mode and flags at least one fingerprint;
    the serving layer maps it to HTTP 403 and counts the rejection on
    ``GET /metrics``.
    """

    def __init__(self, defense: str, flagged_indices: Sequence[int]) -> None:
        self.defense = str(defense)
        self.flagged_indices = tuple(int(i) for i in flagged_indices)
        super().__init__(
            f"guard '{self.defense}' rejected the request: "
            f"{len(self.flagged_indices)} fingerprint(s) flagged as adversarial "
            f"(rows {list(self.flagged_indices[:8])}"
            f"{'…' if len(self.flagged_indices) > 8 else ''})"
        )


@dataclass(frozen=True)
class GuardReport:
    """Outcome of screening one batch of fingerprints.

    ``features`` is the batch the model should actually see (guards may
    transform inputs; the detector passes them through unchanged), ``flagged``
    marks the rows the guard considers adversarial, and ``scores`` carries the
    per-row anomaly statistic behind the decision.
    """

    features: np.ndarray
    flagged: np.ndarray
    scores: np.ndarray

    @property
    def num_flagged(self) -> int:
        return int(np.count_nonzero(self.flagged))


class Defense(abc.ABC):
    """One pluggable hardening strategy around a localizer.

    Subclasses opt into the hooks they implement via the two class flags;
    the defaults make every unimplemented hook a well-defined no-op (plain
    ``fit``, pass-through guard), so a training-only defense never has to
    stub out inference machinery and vice versa.
    """

    #: Registry name (also used in deterministic seed derivation).
    name: str = "defense"
    #: True when :meth:`wrap_training` differs from a plain ``model.fit``.
    hardens_training: bool = False
    #: True when the defense screens online fingerprints via :meth:`guard`.
    guards_inference: bool = False

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def config(self) -> Dict[str, Any]:
        """Constructor parameters (beyond ``seed``) needed to rebuild this instance.

        Subclasses with knobs must override; the dict feeds
        :meth:`spec`, which is how an attached guard's exact configuration —
        including security-relevant settings such as the detector's
        ``action="reject"`` — survives persistence round-trips.
        """
        return {}

    def spec(self) -> "DefenseSpec":
        """A :class:`DefenseSpec` that rebuilds this instance via ``build()``."""
        return DefenseSpec.create(self.name, params=self.config(), seed=self.seed)

    # -- training-time hook ---------------------------------------------
    def wrap_training(
        self, model: Localizer, dataset: FingerprintDataset
    ) -> Localizer:
        """Fit ``model`` on ``dataset`` under this defense (default: plain fit).

        Returns the fitted (possibly hardened) model; the execution engine
        routes every defended training unit through this hook instead of
        calling ``model.fit`` directly.
        """
        model.fit(dataset)
        return model

    # -- inference-time hooks -------------------------------------------
    @property
    def guard_is_fitted(self) -> bool:
        """Whether :meth:`guard` is ready to screen fingerprints."""
        return not self.guards_inference

    @property
    def rejects(self) -> bool:
        """True when flagged fingerprints should abort the request."""
        return False

    def fit_guard(self, dataset: FingerprintDataset) -> "Defense":
        """Calibrate the inference guard on an offline survey (no-op default)."""
        if self.guards_inference:
            raise NotImplementedError(
                f"defense '{self.name}' declares guards_inference but does not "
                "implement fit_guard"
            )
        return self

    def guard(self, features: np.ndarray) -> GuardReport:
        """Screen a batch of normalised fingerprints (pass-through default)."""
        features = np.asarray(features, dtype=np.float64)
        return GuardReport(
            features=features,
            flagged=np.zeros(features.shape[0], dtype=bool),
            scores=np.zeros(features.shape[0], dtype=np.float64),
        )

    # -- guard persistence (ModelStore / LocalizationService archives) ---
    def guard_state_arrays(self) -> Dict[str, np.ndarray]:
        """The fitted guard state as named arrays (empty for guard-less defenses)."""
        return {}

    def load_guard_state(self, arrays: Mapping[str, np.ndarray]) -> "Defense":
        """Restore guard state previously exported by :meth:`guard_state_arrays`."""
        return self

    def __repr__(self) -> str:
        return f"{type(self).__name__}(seed={self.seed})"


# ----------------------------------------------------------------------
# Declarative reference
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DefenseSpec:
    """Serializable, hashable reference to a registered defense family.

    Mirrors :class:`repro.eval.robustness.ScenarioSpec`: ``params`` override
    the family's constructor defaults, ``seed`` feeds its deterministic
    draws, and ``label`` is the name used in result records (defaults to the
    registry name), letting one family appear twice under different knobs in
    the same experiment.
    """

    name: str
    params: Tuple[Tuple[str, Any], ...] = ()
    seed: int = 0
    label: Optional[str] = None

    @classmethod
    def create(
        cls,
        name: str,
        params: Optional[Mapping[str, Any]] = None,
        seed: int = 0,
        label: Optional[str] = None,
    ) -> "DefenseSpec":
        """Build a spec with the name resolved against the defense registry."""
        return cls(
            name=DEFENSES.resolve(name),
            # List-valued knobs (e.g. from a JSON spec file) become tuples so
            # the spec stays hashable, as the engine's memos rely on.
            params=tuple(
                (key, tuple(value) if isinstance(value, list) else value)
                for key, value in sorted((params or {}).items())
            ),
            seed=int(seed),
            label=label,
        )

    @classmethod
    def from_dict(
        cls, data: Union[str, Mapping[str, Any], "DefenseSpec"]
    ) -> "DefenseSpec":
        """Build from a mapping, a bare registry name, or an existing spec.

        Existing specs are re-resolved rather than passed through, so a
        hand-constructed ``DefenseSpec(name="curiculum")`` still fails fast
        with a did-you-mean error and aliases (``"undefended"``) canonicalise
        to their registry name (``"none"``) — which the engine's
        artifact-sharing check relies on.
        """
        if isinstance(data, str):
            return cls.create(data)
        if isinstance(data, DefenseSpec):
            return cls.create(
                name=data.name,
                params=dict(data.params),
                seed=data.seed,
                label=data.label,
            )
        return cls.create(
            name=data["name"],
            params=dict(data.get("params", {})),
            seed=data.get("seed", 0),
            label=data.get("label"),
        )

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"name": self.name}
        if self.params:
            data["params"] = dict(self.params)
        if self.seed:
            data["seed"] = self.seed
        if self.label:
            data["label"] = self.label
        return data

    @property
    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    @property
    def display_name(self) -> str:
        return self.label or self.name

    @property
    def hardens_training(self) -> bool:
        """Whether this family alters training (a class-level flag, no build)."""
        return bool(getattr(DEFENSES.get(self.name), "hardens_training", True))

    def build(self) -> Defense:
        """Instantiate the referenced defense family."""
        return make_defense(self.name, seed=self.seed, **self.param_dict)


# ----------------------------------------------------------------------
# The baseline row of every defense matrix
# ----------------------------------------------------------------------
from ..registry import register_defense  # noqa: E402  (decorator use below)


@register_defense("none", tags=("baseline",), aliases=("undefended",))
class NoDefense(Defense):
    """No hardening at all: the undefended reference row of a defense matrix.

    :meth:`repro.api.ExperimentSpec.resolve_model_tasks` maps this family to
    a defense-less :class:`~repro.eval.engine.ModelTask`, so its training
    units share cache artifacts with plain undefended runs bit for bit.
    """

    name = "none"
