"""Unit tests for the threat model and targeted-AP selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import ThreatModel, no_attack, select_target_aps


class TestThreatModel:
    def test_defaults(self):
        threat = ThreatModel()
        assert threat.epsilon == pytest.approx(0.1)
        assert threat.phi_percent == pytest.approx(10.0)

    def test_rejects_negative_epsilon(self):
        with pytest.raises(ValueError):
            ThreatModel(epsilon=-0.1)

    def test_rejects_phi_out_of_range(self):
        with pytest.raises(ValueError):
            ThreatModel(phi_percent=150.0)

    def test_rejects_inverted_feature_range(self):
        with pytest.raises(ValueError):
            ThreatModel(feature_low=1.0, feature_high=0.0)

    def test_no_attack_is_null(self):
        assert no_attack().is_null

    def test_zero_epsilon_is_null(self):
        assert ThreatModel(epsilon=0.0, phi_percent=50.0).is_null

    def test_target_mask_is_reproducible(self):
        threat = ThreatModel(phi_percent=30.0, seed=5)
        np.testing.assert_array_equal(threat.target_mask(50), threat.target_mask(50))

    def test_target_mask_size(self):
        mask = ThreatModel(phi_percent=20.0).target_mask(50)
        assert mask.sum() == 10

    def test_target_mask_is_memoised_per_ap_count(self):
        threat = ThreatModel(phi_percent=30.0, seed=5)
        first = threat.target_mask(50)
        assert 50 in threat._mask_cache
        np.testing.assert_array_equal(first, threat._mask_cache[50])
        small = threat.target_mask(10)
        assert set(threat._mask_cache) == {50, 10}
        assert small.shape == (10,)

    def test_caller_mutation_cannot_corrupt_the_cache(self):
        threat = ThreatModel(phi_percent=30.0, seed=5)
        mask = threat.target_mask(50)
        mask[:] = True  # a careless caller scribbles over its copy
        np.testing.assert_array_equal(
            threat.target_mask(50),
            ThreatModel(phi_percent=30.0, seed=5).target_mask(50),
        )

    def test_one_percent_phi_on_few_aps_targets_one_ap(self):
        # ø = 1% of 8 APs rounds to 0.08 — the documented floor guarantees at
        # least one targeted AP whenever ø > 0.
        for num_aps in (1, 3, 8, 40):
            mask = ThreatModel(phi_percent=1.0, seed=0).target_mask(num_aps)
            assert mask.sum() == 1, num_aps


class TestSelectTargetAps:
    def test_zero_phi_selects_nothing(self):
        mask = select_target_aps(100, 0.0, np.random.default_rng(0))
        assert mask.sum() == 0

    def test_full_phi_selects_everything(self):
        mask = select_target_aps(40, 100.0, np.random.default_rng(0))
        assert mask.sum() == 40

    def test_small_phi_selects_at_least_one(self):
        mask = select_target_aps(100, 0.5, np.random.default_rng(0))
        assert mask.sum() == 1

    def test_selection_fraction_close_to_phi(self):
        mask = select_target_aps(200, 25.0, np.random.default_rng(0))
        assert mask.sum() == 50

    def test_rejects_invalid_phi(self):
        with pytest.raises(ValueError):
            select_target_aps(10, -5.0, np.random.default_rng(0))

    def test_empty_ap_set(self):
        mask = select_target_aps(0, 50.0, np.random.default_rng(0))
        assert mask.shape == (0,)

    def test_different_seeds_select_different_aps(self):
        a = select_target_aps(100, 30.0, np.random.default_rng(1))
        b = select_target_aps(100, 30.0, np.random.default_rng(2))
        assert not np.array_equal(a, b)
