"""Unit tests for MITM scenario wrappers and surrogate gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import (
    ATTACK_REGISTRY,
    FGSMAttack,
    MIMAttack,
    MITMScenario,
    PGDAttack,
    SignalManipulationAttack,
    SignalSpoofingAttack,
    SurrogateGradientModel,
    ThreatModel,
    attack_dataset,
    make_attack,
)
from repro.data import RSS_FLOOR_DBM


class LinearVictim:
    """Victim with constant positive gradient (pushes features upward)."""

    def loss_gradient(self, features, labels):
        return np.ones_like(features)


class TestRegistry:
    def test_contains_three_methods(self):
        assert set(ATTACK_REGISTRY) == {"FGSM", "PGD", "MIM"}

    @pytest.mark.parametrize("name, cls", [("FGSM", FGSMAttack), ("pgd", PGDAttack), ("Mim", MIMAttack)])
    def test_make_attack_is_case_insensitive(self, name, cls):
        assert isinstance(make_attack(name, ThreatModel()), cls)

    def test_unknown_method_raises(self):
        with pytest.raises(KeyError):
            make_attack("CW", ThreatModel())


class TestMITMVariants:
    def test_manipulation_delegates_to_crafter(self, rng):
        features = rng.uniform(0.2, 0.8, size=(4, 8))
        labels = np.zeros(4, dtype=int)
        threat = ThreatModel(epsilon=0.1, phi_percent=100.0)
        manipulation = SignalManipulationAttack(threat, method="FGSM")
        direct = FGSMAttack(threat)
        np.testing.assert_allclose(
            manipulation.perturb(features, labels, LinearVictim()),
            direct.perturb(features, labels, LinearVictim()),
        )

    def test_spoofing_overwrites_targeted_aps_with_replay(self, rng):
        features = rng.uniform(0.2, 0.8, size=(5, 6))
        labels = np.zeros(5, dtype=int)
        threat = ThreatModel(epsilon=0.0, phi_percent=50.0, seed=1)
        # epsilon 0 isolates the replay step (no crafted perturbation on top).
        replay = np.full(6, 0.9)
        spoof = SignalSpoofingAttack(
            ThreatModel(epsilon=0.05, phi_percent=50.0, seed=1), replay_features=replay
        )
        adversarial = spoof.perturb(features, labels, LinearVictim())
        mask = ThreatModel(epsilon=0.05, phi_percent=50.0, seed=1).target_mask(6)
        # Spoofed columns sit near the replay value (within the small epsilon).
        assert np.abs(adversarial[:, mask] - 0.9).max() <= 0.05 + 1e-9
        np.testing.assert_allclose(adversarial[:, ~mask], features[:, ~mask])

    def test_spoofing_defaults_to_dataset_mean_replay(self, rng):
        features = rng.uniform(0.2, 0.8, size=(5, 6))
        labels = np.zeros(5, dtype=int)
        spoof = SignalSpoofingAttack(ThreatModel(epsilon=0.05, phi_percent=30.0, seed=2))
        adversarial = spoof.perturb(features, labels, LinearVictim())
        assert adversarial.shape == features.shape

    def test_spoofing_rejects_bad_replay_shape(self, rng):
        spoof = SignalSpoofingAttack(
            ThreatModel(epsilon=0.1, phi_percent=30.0), replay_features=np.zeros(3)
        )
        with pytest.raises(ValueError):
            spoof.perturb(rng.random((2, 6)), np.zeros(2, dtype=int), LinearVictim())

    def test_spoofing_null_threat_is_noop(self, rng):
        features = rng.random((3, 4))
        spoof = SignalSpoofingAttack(ThreatModel(epsilon=0.0, phi_percent=0.0))
        np.testing.assert_allclose(
            spoof.perturb(features, np.zeros(3, dtype=int), LinearVictim()), features
        )

    def test_scenario_builder(self):
        scenario = MITMScenario(ThreatModel(epsilon=0.1, phi_percent=10.0), variant="spoofing")
        assert isinstance(scenario.build(), SignalSpoofingAttack)
        scenario = MITMScenario(ThreatModel(), variant="manipulation")
        assert isinstance(scenario.build(), SignalManipulationAttack)

    def test_scenario_rejects_unknown_variant(self):
        with pytest.raises(ValueError):
            MITMScenario(ThreatModel(), variant="jamming").build()


class TestAttackDataset:
    def test_attacked_dataset_preserves_labels_and_shape(self, tiny_campaign, trained_dnn):
        test = tiny_campaign.test_for("S7")
        threat = ThreatModel(epsilon=0.2, phi_percent=50.0, seed=3)
        attacked = attack_dataset(test, FGSMAttack(threat), trained_dnn)
        assert attacked.num_samples == test.num_samples
        np.testing.assert_array_equal(attacked.labels, test.labels)
        assert attacked.rss_dbm.min() >= RSS_FLOOR_DBM

    def test_attack_increases_localization_error(self, tiny_campaign, trained_dnn):
        test = tiny_campaign.test_all_devices()
        threat = ThreatModel(epsilon=0.4, phi_percent=100.0, seed=3)
        attacked = attack_dataset(test, FGSMAttack(threat), trained_dnn)
        assert trained_dnn.mean_error(attacked) > trained_dnn.mean_error(test)


class TestSurrogate:
    def test_surrogate_imitates_knn_and_provides_gradients(self, tiny_campaign, trained_knn):
        train = tiny_campaign.train
        surrogate = SurrogateGradientModel(
            num_aps=train.num_aps, num_classes=train.num_classes, epochs=100, seed=0
        )
        victim_predictions = trained_knn.predict(train.features)
        surrogate.fit(train.features, victim_predictions)
        agreement = (surrogate.predict(train.features) == victim_predictions).mean()
        assert agreement > 0.7
        gradient = surrogate.loss_gradient(train.features[:5], train.labels[:5])
        assert gradient.shape == (5, train.num_aps)
        assert np.abs(gradient).sum() > 0

    def test_gradient_before_fit_raises(self):
        surrogate = SurrogateGradientModel(num_aps=4, num_classes=3)
        with pytest.raises(RuntimeError):
            surrogate.loss_gradient(np.zeros((2, 4)), np.zeros(2, dtype=int))
