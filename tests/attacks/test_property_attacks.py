"""Property-based tests for attack invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.attacks import FGSMAttack, MIMAttack, PGDAttack, ThreatModel


class RandomGradientVictim:
    """Victim returning a deterministic pseudo-random gradient field."""

    def loss_gradient(self, features, labels):
        rng = np.random.default_rng(abs(int(np.asarray(features).sum() * 1000)) % (2**31))
        return rng.normal(size=np.asarray(features).shape)


unit_features = arrays(
    dtype=np.float64,
    shape=(4, 12),
    elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
epsilons = st.floats(min_value=0.01, max_value=0.5, allow_nan=False)
phis = st.floats(min_value=1.0, max_value=100.0, allow_nan=False)
seeds = st.integers(min_value=0, max_value=10_000)


@settings(max_examples=25, deadline=None)
@given(unit_features, epsilons, phis, seeds)
def test_fgsm_linf_bound_and_box(features, epsilon, phi, seed):
    threat = ThreatModel(epsilon=epsilon, phi_percent=phi, seed=seed)
    adversarial = FGSMAttack(threat).perturb(
        features, np.zeros(4, dtype=int), RandomGradientVictim()
    )
    assert np.abs(adversarial - features).max() <= epsilon + 1e-9
    assert adversarial.min() >= 0.0 and adversarial.max() <= 1.0


@settings(max_examples=15, deadline=None)
@given(unit_features, epsilons, phis, seeds)
def test_pgd_linf_bound_and_box(features, epsilon, phi, seed):
    threat = ThreatModel(epsilon=epsilon, phi_percent=phi, seed=seed)
    adversarial = PGDAttack(threat, num_steps=4).perturb(
        features, np.zeros(4, dtype=int), RandomGradientVictim()
    )
    assert np.abs(adversarial - features).max() <= epsilon + 1e-9
    assert adversarial.min() >= 0.0 and adversarial.max() <= 1.0


@settings(max_examples=15, deadline=None)
@given(unit_features, epsilons, phis, seeds)
def test_mim_linf_bound_and_box(features, epsilon, phi, seed):
    threat = ThreatModel(epsilon=epsilon, phi_percent=phi, seed=seed)
    adversarial = MIMAttack(threat, num_steps=4).perturb(
        features, np.zeros(4, dtype=int), RandomGradientVictim()
    )
    assert np.abs(adversarial - features).max() <= epsilon + 1e-9
    assert adversarial.min() >= 0.0 and adversarial.max() <= 1.0


@settings(max_examples=25, deadline=None)
@given(unit_features, epsilons, phis, seeds)
def test_untargeted_aps_are_never_touched(features, epsilon, phi, seed):
    threat = ThreatModel(epsilon=epsilon, phi_percent=phi, seed=seed)
    mask = threat.target_mask(features.shape[1])
    adversarial = FGSMAttack(threat).perturb(
        features, np.zeros(4, dtype=int), RandomGradientVictim()
    )
    np.testing.assert_allclose(adversarial[:, ~mask], features[:, ~mask])


@settings(max_examples=25, deadline=None)
@given(unit_features, phis, seeds)
def test_phi_controls_number_of_targeted_aps(features, phi, seed):
    threat = ThreatModel(epsilon=0.1, phi_percent=phi, seed=seed)
    mask = threat.target_mask(features.shape[1])
    expected = max(1, int(round(features.shape[1] * phi / 100.0)))
    assert mask.sum() == min(expected, features.shape[1])
