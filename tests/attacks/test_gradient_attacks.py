"""Unit tests for FGSM, PGD and MIM crafting methods."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import FGSMAttack, MIMAttack, PGDAttack, ThreatModel


class QuadraticVictim:
    """A toy victim whose loss gradient is analytically known.

    Loss = 0.5 * ||x - target||^2 per sample, so the gradient is x - target.
    """

    def __init__(self, target: float = 0.5) -> None:
        self.target = target
        self.calls = 0

    def loss_gradient(self, features: np.ndarray, labels: np.ndarray) -> np.ndarray:
        self.calls += 1
        return np.asarray(features, dtype=np.float64) - self.target


@pytest.fixture()
def features(rng):
    return rng.uniform(0.2, 0.8, size=(6, 10))


@pytest.fixture()
def labels():
    return np.arange(6) % 3


class TestFGSM:
    def test_perturbation_magnitude_is_epsilon_on_targets(self, features, labels):
        threat = ThreatModel(epsilon=0.1, phi_percent=100.0, seed=0)
        adversarial = FGSMAttack(threat).perturb(features, labels, QuadraticVictim())
        delta = np.abs(adversarial - features)
        inside = (features > 0.1) & (features < 0.9)  # away from clipping
        np.testing.assert_allclose(delta[inside], 0.1, atol=1e-12)

    def test_only_targeted_aps_are_modified(self, features, labels):
        threat = ThreatModel(epsilon=0.2, phi_percent=30.0, seed=1)
        mask = threat.target_mask(features.shape[1])
        adversarial = FGSMAttack(threat).perturb(features, labels, QuadraticVictim())
        np.testing.assert_allclose(adversarial[:, ~mask], features[:, ~mask])
        assert np.abs(adversarial[:, mask] - features[:, mask]).max() > 0

    def test_null_threat_returns_copy(self, features, labels):
        adversarial = FGSMAttack(ThreatModel(epsilon=0.0, phi_percent=0.0)).perturb(
            features, labels, QuadraticVictim()
        )
        np.testing.assert_allclose(adversarial, features)
        assert adversarial is not features

    def test_output_respects_feature_box(self, features, labels):
        threat = ThreatModel(epsilon=0.9, phi_percent=100.0)
        adversarial = FGSMAttack(threat).perturb(features, labels, QuadraticVictim())
        assert adversarial.min() >= 0.0 and adversarial.max() <= 1.0

    def test_moves_along_gradient_sign(self, labels):
        features = np.full((3, 4), 0.4)
        threat = ThreatModel(epsilon=0.1, phi_percent=100.0)
        adversarial = FGSMAttack(threat).perturb(features, labels[:3], QuadraticVictim(target=0.9))
        # Gradient is x - 0.9 < 0, so the perturbation moves features down.
        assert (adversarial < features).all()

    def test_explicit_target_mask_overrides_threat(self, features, labels):
        threat = ThreatModel(epsilon=0.1, phi_percent=100.0)
        mask = np.zeros(features.shape[1], dtype=bool)
        mask[0] = True
        adversarial = FGSMAttack(threat).perturb(
            features, labels, QuadraticVictim(), target_mask=mask
        )
        np.testing.assert_allclose(adversarial[:, 1:], features[:, 1:])

    def test_bad_mask_shape_raises(self, features, labels):
        threat = ThreatModel(epsilon=0.1, phi_percent=100.0)
        with pytest.raises(ValueError):
            FGSMAttack(threat).perturb(
                features, labels, QuadraticVictim(), target_mask=np.ones(3, dtype=bool)
            )

    def test_repr_mentions_parameters(self):
        assert "epsilon=0.1" in repr(FGSMAttack(ThreatModel(epsilon=0.1)))


class TestPGD:
    def test_stays_within_epsilon_ball(self, features, labels):
        threat = ThreatModel(epsilon=0.15, phi_percent=100.0, seed=2)
        adversarial = PGDAttack(threat, num_steps=8).perturb(features, labels, QuadraticVictim())
        assert np.abs(adversarial - features).max() <= 0.15 + 1e-12

    def test_respects_feature_box(self, features, labels):
        threat = ThreatModel(epsilon=0.5, phi_percent=100.0)
        adversarial = PGDAttack(threat).perturb(features, labels, QuadraticVictim())
        assert adversarial.min() >= 0.0 and adversarial.max() <= 1.0

    def test_iterates_victim_gradient(self, features, labels):
        victim = QuadraticVictim()
        threat = ThreatModel(epsilon=0.1, phi_percent=100.0)
        PGDAttack(threat, num_steps=5).perturb(features, labels, victim)
        assert victim.calls == 5

    def test_untouched_aps_stay_clean(self, features, labels):
        threat = ThreatModel(epsilon=0.2, phi_percent=20.0, seed=3)
        mask = threat.target_mask(features.shape[1])
        adversarial = PGDAttack(threat).perturb(features, labels, QuadraticVictim())
        np.testing.assert_allclose(adversarial[:, ~mask], features[:, ~mask])

    def test_random_start_can_be_disabled(self, features, labels):
        threat = ThreatModel(epsilon=0.1, phi_percent=100.0)
        a = PGDAttack(threat, num_steps=3, random_start=False).perturb(
            features, labels, QuadraticVictim()
        )
        b = PGDAttack(threat, num_steps=3, random_start=False).perturb(
            features, labels, QuadraticVictim()
        )
        np.testing.assert_allclose(a, b)

    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            PGDAttack(ThreatModel(), num_steps=0)

    def test_null_threat_noop(self, features, labels):
        adversarial = PGDAttack(ThreatModel(epsilon=0.0, phi_percent=0.0)).perturb(
            features, labels, QuadraticVictim()
        )
        np.testing.assert_allclose(adversarial, features)


class TestMIM:
    def test_stays_within_epsilon_ball(self, features, labels):
        threat = ThreatModel(epsilon=0.2, phi_percent=100.0)
        adversarial = MIMAttack(threat, num_steps=6).perturb(features, labels, QuadraticVictim())
        assert np.abs(adversarial - features).max() <= 0.2 + 1e-12

    def test_momentum_accumulates_and_perturbs(self, features, labels):
        threat = ThreatModel(epsilon=0.1, phi_percent=100.0)
        adversarial = MIMAttack(threat, num_steps=4).perturb(features, labels, QuadraticVictim())
        assert np.abs(adversarial - features).max() > 0.05

    def test_zero_gradient_leaves_input_unchanged(self, labels):
        class ZeroVictim:
            def loss_gradient(self, feats, labs):
                return np.zeros_like(feats)

        features = np.full((3, 5), 0.5)
        threat = ThreatModel(epsilon=0.2, phi_percent=100.0)
        adversarial = MIMAttack(threat).perturb(features, labels[:3], ZeroVictim())
        np.testing.assert_allclose(adversarial, features)

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            MIMAttack(ThreatModel(), num_steps=0)
        with pytest.raises(ValueError):
            MIMAttack(ThreatModel(), decay=-1.0)

    def test_respects_targeted_subset(self, features, labels):
        threat = ThreatModel(epsilon=0.3, phi_percent=40.0, seed=4)
        mask = threat.target_mask(features.shape[1])
        adversarial = MIMAttack(threat).perturb(features, labels, QuadraticVictim())
        np.testing.assert_allclose(adversarial[:, ~mask], features[:, ~mask])


class TestOneDimensionalInputs:
    """``perturb`` accepts a single fingerprint (1-D) as well as a batch."""

    @pytest.mark.parametrize(
        "make_attack",
        [
            lambda t: FGSMAttack(t),
            lambda t: PGDAttack(t, random_start=False),
            lambda t: MIMAttack(t),
        ],
        ids=["fgsm", "pgd", "mim"],
    )
    def test_single_fingerprint_matches_batch_row(self, features, labels, make_attack):
        """Regression: MIM crashed on 1-D input; now every attack must treat a
        lone fingerprint exactly like the corresponding one-row batch."""
        threat = ThreatModel(epsilon=0.2, phi_percent=50.0, seed=1)
        attack = make_attack(threat)
        row = attack.perturb(features[2], labels[2], QuadraticVictim())
        assert row.shape == features[2].shape  # squeezed back to 1-D
        batch = attack.perturb(features[2:3], labels[2:3], QuadraticVictim())
        np.testing.assert_array_equal(row, batch[0])


class TestBatchedVsRowwiseIdentity:
    """One batched ``perturb`` call is bit-identical to a per-row loop.

    This is the invariant that let the engine swap its per-fingerprint
    crafting loop for a single batched call: every step of FGSM/PGD/MIM is
    elementwise (sign, clip, per-row momentum normalisation), so batching
    changes the work schedule, never the bits.  PGD is checked without its
    random start — that draws ONE seeded stream across the batch, so a
    per-row loop legitimately sees different noise.
    """

    @pytest.mark.parametrize(
        "make_attack",
        [
            lambda t: FGSMAttack(t),
            lambda t: PGDAttack(t, random_start=False),
            lambda t: MIMAttack(t),
        ],
        ids=["fgsm", "pgd", "mim"],
    )
    def test_bitwise(self, features, labels, make_attack):
        threat = ThreatModel(epsilon=0.3, phi_percent=50.0, seed=5)
        attack = make_attack(threat)
        batched = attack.perturb(features, labels, QuadraticVictim())
        rowwise = np.stack(
            [
                attack.perturb(features[i], labels[i], QuadraticVictim())
                for i in range(features.shape[0])
            ]
        )
        assert batched.shape == rowwise.shape
        assert np.array_equal(
            batched.view(np.uint64), rowwise.view(np.uint64)
        ), "batched attack diverged bitwise from the per-fingerprint loop"
