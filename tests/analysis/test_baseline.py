"""Baseline round-trips, fingerprint stability, and the new/baselined/stale split."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import Baseline, BaselineEntry, run_lint

_BAD_MODULE = """\
_CACHE = {}

def put(key, value):
    _CACHE[key] = value
"""


def _lint_scratch(tmp_path, source: str, name: str = "core/bad.py"):
    root = tmp_path / "repro"
    target = root / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    return run_lint(root=root, rules=["R4"])


def test_baseline_round_trip_preserves_entries(tmp_path):
    report = _lint_scratch(tmp_path, _BAD_MODULE)
    assert len(report.findings) == 1
    baseline = Baseline().updated(report.findings)
    path = tmp_path / "lint-baseline.json"
    baseline.save(path)
    assert Baseline.load(path).entries == baseline.entries


def test_baseline_load_missing_file_is_empty(tmp_path):
    assert Baseline.load(tmp_path / "absent.json").entries == []


def test_baseline_rejects_unknown_format_version(tmp_path):
    path = tmp_path / "lint-baseline.json"
    path.write_text(json.dumps({"version": 99, "findings": []}))
    with pytest.raises(ValueError, match="version"):
        Baseline.load(path)


def test_split_partitions_new_baselined_and_stale(tmp_path):
    report = _lint_scratch(tmp_path, _BAD_MODULE)
    finding = report.findings[0]
    ghost = BaselineEntry(
        fingerprint="feedfacefeedface", rule="R4", path="repro/gone.py",
        line=1, message="fixed long ago", justification="was fine",
    )
    baseline = Baseline(
        entries=[BaselineEntry.from_finding(finding, justification="known"), ghost]
    )
    new, baselined, stale = baseline.split(report.findings)
    assert new == []
    assert [f.fingerprint for f in baselined] == [finding.fingerprint]
    assert stale == [ghost]

    new, baselined, stale = Baseline().split(report.findings)
    assert [f.fingerprint for f in new] == [finding.fingerprint]
    assert baselined == [] and stale == []


def test_updated_keeps_justifications_and_prunes_stale(tmp_path):
    report = _lint_scratch(tmp_path, _BAD_MODULE)
    finding = report.findings[0]
    old = Baseline(
        entries=[
            BaselineEntry.from_finding(finding, justification="deliberate memo"),
            BaselineEntry(
                fingerprint="feedfacefeedface", rule="R4", path="repro/gone.py",
                line=1, message="fixed long ago", justification="obsolete",
            ),
        ]
    )
    updated = old.updated(report.findings)
    assert [e.fingerprint for e in updated.entries] == [finding.fingerprint]
    assert updated.entries[0].justification == "deliberate memo"


def test_fingerprints_survive_unrelated_line_insertion(tmp_path):
    before = _lint_scratch(tmp_path, _BAD_MODULE).findings[0]
    shifted = _lint_scratch(
        tmp_path,
        '"""Docstring pushing everything down."""\n\n# a comment\n\n' + _BAD_MODULE,
    ).findings[0]
    assert shifted.line != before.line
    assert shifted.fingerprint == before.fingerprint


def test_fingerprints_change_when_the_flagged_line_changes(tmp_path):
    before = _lint_scratch(tmp_path, _BAD_MODULE).findings[0]
    edited = _lint_scratch(
        tmp_path, _BAD_MODULE.replace("_CACHE[key] = value", "_CACHE[key] = [value]")
    ).findings[0]
    assert edited.fingerprint != before.fingerprint


def test_identical_lines_get_distinct_fingerprints(tmp_path):
    source = """\
    _CACHE = {}

    def put(key, value):
        _CACHE[key] = value

    def put_again(key, value):
        _CACHE[key] = value
    """
    report = _lint_scratch(tmp_path, source)
    prints = [f.fingerprint for f in report.findings]
    assert len(prints) == 2 and len(set(prints)) == 2
