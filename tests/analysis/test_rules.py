"""Fixture-driven tests of the five ``repro lint`` rules.

Each rule gets a *bad* scratch snippet it must flag and a *good* one it must
pass, written into a throwaway package tree shaped like ``repro/`` so the
rules' module scoping applies exactly as it does on the live tree.
"""

from __future__ import annotations

import textwrap
from typing import Dict, Optional, Sequence

import pytest

from repro.analysis import run_lint
from repro.registry import available_lint_rules


def lint_tree(tmp_path, files: Dict[str, str], rules: Optional[Sequence[str]] = None):
    """Write ``files`` (relative path -> source) under a scratch ``repro/`` tree."""
    root = tmp_path / "repro"
    for relative, source in files.items():
        target = root / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return run_lint(root=root, rules=rules)


def test_all_five_rules_registered():
    assert available_lint_rules() == ["R1", "R2", "R3", "R4", "R5"]


# -- R1: determinism -----------------------------------------------------


def test_r1_flags_legacy_rng_stdlib_random_and_wallclock(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "nn/bad.py": """\
            import random
            import time

            import numpy as np

            def jitter(x):
                random.random()
                np.random.normal(0.0, 1.0)
                return x + time.time()
            """
        },
        rules=["R1"],
    )
    messages = [f.message for f in report.findings]
    assert len(messages) == 3
    assert any("random.random" in m for m in messages)
    assert any("np.random.normal" in m for m in messages)
    assert any("time.time" in m for m in messages)


def test_r1_passes_seeded_generators_and_out_of_scope_modules(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "nn/good.py": """\
            import numpy as np

            def jitter(rng: np.random.Generator, x):
                return x + rng.normal(0.0, 1.0)
            """,
            # The serving layer measures latency: wall-clock is in scope there.
            "serve/metrics.py": """\
            import time

            def stamp():
                return time.time()
            """,
            # The queue's lease TTLs are wall-clock by design.
            "queue/lease.py": """\
            import time

            def now():
                return time.time()
            """,
        },
        rules=["R1"],
    )
    assert report.findings == []


# -- R2: cache-key completeness ------------------------------------------

_R2_COMMON = """\
    from dataclasses import dataclass
    from typing import Optional

    @dataclass(frozen=True)
    class ModelTask:
        label: str
        name: str
        params: dict
        defense: Optional[str] = None

"""


def test_r2_flags_spec_field_missing_from_payload(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "eval/keys.py": _R2_COMMON
            + """\
    def _model_payload(task: ModelTask) -> dict:
        return {"model": task.name, "params": task.params}
    """
        },
        rules=["R2"],
    )
    assert len(report.findings) == 1
    assert "ModelTask.defense" in report.findings[0].message
    # `label` is declared digest-irrelevant and must not be demanded.
    assert not any("label" in f.message for f in report.findings)


def test_r2_passes_complete_field_access_and_whole_embeds(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "eval/keys.py": _R2_COMMON
            + """\
    def _model_payload(task: ModelTask) -> dict:
        return {"model": task.name, "params": task.params, "defense": task.defense}

    def _whole_payload(task: ModelTask) -> dict:
        return {"task": task}

    def _serialized_payload(task: ModelTask) -> dict:
        return {"task": task.to_dict()}
    """
        },
        rules=["R2"],
    )
    assert report.findings == []


def test_r2_ignores_behavioural_uses_and_none_guards(tmp_path):
    # Branching on the spec and calling its methods is not piecemeal
    # serialisation: the embed can legitimately happen in a helper.
    report = lint_tree(
        tmp_path,
        {
            "eval/keys.py": _R2_COMMON
            + """\
    def _model_payload(task: ModelTask) -> dict:
        return {"task": task}

    def train(task: ModelTask, cache_key):
        if task is not None:
            cache_key("model", _model_payload(task))
    """
        },
        rules=["R2"],
    )
    assert report.findings == []


def test_r2_ignores_functions_that_never_feed_a_digest(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "eval/keys.py": _R2_COMMON
            + """\
    def describe(task: ModelTask) -> str:
        return task.name
    """
        },
        rules=["R2"],
    )
    assert report.findings == []


# -- R3: atomic writes ---------------------------------------------------


def test_r3_flags_bare_writes_in_durable_modules(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "queue/bad.py": """\
            import json

            def save(path, payload):
                with open(path, "w") as handle:
                    json.dump(payload, handle)

            def stamp(path, text):
                path.write_text(text)
            """
        },
        rules=["R3"],
    )
    assert len(report.findings) == 3  # open-w, json.dump, write_text


def test_r3_passes_writer_functions_routed_through_write_atomic(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "queue/good.py": """\
            from repro.atomic import write_atomic

            def save(path, text):
                def writer(temp_path):
                    with temp_path.open("w") as handle:
                        handle.write(text)

                write_atomic(path, writer)

            def read(path):
                with open(path) as handle:
                    return handle.read()
            """
        },
        rules=["R3"],
    )
    assert report.findings == []


def test_r3_out_of_scope_module_is_ignored(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "nn/scratch.py": """\
            def dump(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
            """
        },
        rules=["R3"],
    )
    assert report.findings == []


def test_r3_pragma_suppresses_with_justification(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "queue/lock.py": """\
            def claim(temp, text):
                temp.write_text(text)  # repro-lint: allow[R3] published via os.link
            """
        },
        rules=["R3"],
    )
    assert report.findings == []
    assert len(report.suppressed) == 1
    assert report.suppressed[0]["justification"] == "published via os.link"


# -- R4: shared mutable state --------------------------------------------


def test_r4_flags_unguarded_module_container_mutation(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "core/bad.py": """\
            _CACHE = {}

            def put(key, value):
                _CACHE[key] = value

            def drop(key):
                _CACHE.pop(key, None)
            """
        },
        rules=["R4"],
    )
    assert len(report.findings) == 2
    assert all("_CACHE" in f.message for f in report.findings)


def test_r4_passes_locks_thread_locals_and_local_shadows(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "core/good.py": """\
            import threading

            _CACHE = {}
            _LOCK = threading.Lock()
            _TABLE = {"a": 1}  # read-only lookup table: never mutated

            class _Memo(threading.local):
                def __init__(self):
                    self.seen = {}

            _MEMO = _Memo()

            def put(key, value):
                with _LOCK:
                    _CACHE[key] = value

            def local_work():
                _SCRATCH = {}
                _SCRATCH["x"] = 1  # a local, not the module global
                return _SCRATCH
            """
        },
        rules=["R4"],
    )
    assert report.findings == []


def test_r4_subscript_assignment_is_not_mistaken_for_rebinding(tmp_path):
    # `_CACHE[k] = v` mutates the global; it must not be treated as a
    # shadowing local binding of `_CACHE`.
    report = lint_tree(
        tmp_path,
        {
            "core/subtle.py": """\
            _CACHE = {}

            def put(key, value):
                _CACHE[key] = value
                return _CACHE
            """
        },
        rules=["R4"],
    )
    assert len(report.findings) == 1


# -- R5: registry hygiene ------------------------------------------------


def test_r5_flags_computed_names_whitespace_and_duplicates(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "defenses/bad.py": """\
            from repro.registry import register_defense

            NAME = "computed"

            @register_defense(NAME)
            class A:
                pass

            @register_defense(" padded ")
            class B:
                pass

            @register_defense("twin")
            class C:
                pass
            """,
            "defenses/other.py": """\
            from repro.registry import register_defense

            @register_defense("TWIN")
            class D:
                pass
            """,
        },
        rules=["R5"],
    )
    messages = [f.message for f in report.findings]
    assert len(messages) == 3
    assert any("string literal" in m for m in messages)
    assert any("whitespace" in m for m in messages)
    assert any("already registered" in m for m in messages)


def test_r5_passes_literal_unique_names_and_aliases(tmp_path):
    report = lint_tree(
        tmp_path,
        {
            "defenses/good.py": """\
            from repro.registry import register_defense, register_scenario

            @register_defense("curriculum", aliases=("cal",))
            class A:
                pass

            @register_scenario("curriculum")  # other registry: no clash
            class B:
                pass
            """
        },
        rules=["R5"],
    )
    assert report.findings == []


# -- rule selection ------------------------------------------------------


def test_unknown_rule_name_raises(tmp_path):
    with pytest.raises(KeyError):
        lint_tree(tmp_path, {"nn/empty.py": ""}, rules=["R9"])
