"""Smoke tests of ``repro lint`` against the real source tree and CLI.

These are the invariant-gate tests: the committed ``lint-baseline.json``
must account for every finding on the live tree, and mutating the tree in a
scratch copy (dropping a spec field from a digest payload) must re-surface
a finding — proving the gate actually guards the cache-key contract.
"""

from __future__ import annotations

import json
import shutil
import time
from pathlib import Path

import repro
from repro.analysis import default_root, run_lint
from repro.reproduce import main

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "lint-baseline.json"


def test_live_tree_is_clean_against_committed_baseline(capsys):
    started = time.monotonic()
    exit_code = main(["lint", "--json", "--baseline", str(BASELINE)])
    elapsed = time.monotonic() - started
    document = json.loads(capsys.readouterr().out)
    assert exit_code == 0
    assert document["kind"] == "lint-report"
    assert document["rules"] == ["R1", "R2", "R3", "R4", "R5"]
    assert document["ok"] is True
    assert document["counts"]["new"] == 0
    assert document["counts"]["stale_baseline_entries"] == 0
    assert document["modules_scanned"] > 50
    assert elapsed < 5.0, f"lint took {elapsed:.1f}s, budget is 5s"


def test_committed_baseline_entries_all_carry_justifications():
    document = json.loads(BASELINE.read_text())
    assert document["findings"], "expected the sanctioned seed_everything entries"
    for entry in document["findings"]:
        assert entry["justification"].strip(), entry


def test_lint_table_reports_ok_on_clean_tree(capsys):
    exit_code = main(["lint", "--baseline", str(BASELINE)])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "OK: no findings outside the baseline" in out


def test_lint_list_rules(capsys):
    exit_code = main(["lint", "--list-rules"])
    out = capsys.readouterr().out
    assert exit_code == 0
    for rule_id in ("R1", "R2", "R3", "R4", "R5"):
        assert rule_id in out


def test_lint_exits_nonzero_on_new_finding_and_update_baseline_accepts(
    tmp_path, capsys
):
    root = tmp_path / "repro"
    bad = root / "core" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("_CACHE = {}\n\ndef put(k, v):\n    _CACHE[k] = v\n")
    baseline_path = tmp_path / "lint-baseline.json"

    assert main(["lint", "--root", str(root), "--baseline", str(baseline_path)]) == 1
    capsys.readouterr()

    assert (
        main([
            "lint", "--root", str(root), "--baseline", str(baseline_path),
            "--update-baseline",
        ])
        == 0
    )
    capsys.readouterr()
    assert baseline_path.exists()
    assert main(["lint", "--root", str(root), "--baseline", str(baseline_path)]) == 0


def test_r2_catches_spec_field_dropped_from_digest_payload(tmp_path):
    """Deleting the defense embed from the engine must re-surface R2.

    This is the acceptance proof for the cache-key rule: a scratch copy of
    the live tree with ``payload["defense"] = task.defense`` removed from
    ``_model_payload`` aliases defended and undefended artefacts — and the
    linter notices.
    """
    scratch = tmp_path / "repro"
    shutil.copytree(default_root(), scratch, ignore=shutil.ignore_patterns("__pycache__"))
    engine = scratch / "eval" / "engine.py"
    source = engine.read_text()
    block = (
        '    if task.defense is not None and task.defense.hardens_training:\n'
        '        payload["defense"] = task.defense\n'
    )
    assert block in source, "engine.py _model_payload changed shape; update the test"
    engine.write_text(source.replace(block, ""))

    clean = run_lint(root=default_root(), rules=["R2"])
    assert clean.findings == []

    mutated = run_lint(root=scratch, rules=["R2"])
    assert any(
        "ModelTask.defense" in finding.message
        and finding.path == "repro/eval/engine.py"
        for finding in mutated.findings
    ), [f.message for f in mutated.findings]


def test_default_root_is_the_installed_package():
    assert default_root() == Path(repro.__file__).resolve().parent
