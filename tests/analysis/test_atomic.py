"""Crash-mid-write regression tests for the atomic-write discipline.

A writer killed (or raising) halfway through an export must never leave a
truncated file at the destination, never clobber a pre-existing good file,
and never litter the directory with temp files — for the primitive itself
and for both CSV exporters that R3 found writing bare.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.atomic import write_atomic, write_text_atomic
from repro.data import FingerprintDataset
from repro.data.io import load_dataset_csv, save_dataset_csv
from repro.eval.reporting import results_to_csv


class _ExplodesOnStr:
    """Stands in for a device/cell whose serialisation fails mid-row."""

    def __str__(self) -> str:
        raise RuntimeError("boom mid-write")


def _assert_no_litter(directory):
    assert list(directory.iterdir()) == [], "crashed write littered the directory"


# -- the primitive -------------------------------------------------------


def test_write_atomic_publishes_complete_file(tmp_path):
    target = tmp_path / "out.txt"

    def writer(temp_path):
        temp_path.write_text("payload")

    write_atomic(target, writer)
    assert target.read_text() == "payload"
    assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]


def test_write_atomic_crash_leaves_nothing(tmp_path):
    target = tmp_path / "out.txt"

    def writer(temp_path):
        temp_path.write_text("half a pay")
        raise RuntimeError("killed")

    with pytest.raises(RuntimeError):
        write_atomic(target, writer)
    assert not target.exists()
    _assert_no_litter(tmp_path)


def test_write_atomic_crash_preserves_previous_version(tmp_path):
    target = tmp_path / "out.txt"
    target.write_text("good old content")

    def writer(temp_path):
        temp_path.write_text("new but doo")
        raise RuntimeError("killed")

    with pytest.raises(RuntimeError):
        write_atomic(target, writer)
    assert target.read_text() == "good old content"
    assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]


def test_write_text_atomic_round_trip(tmp_path):
    target = tmp_path / "nested" / "note.json"
    assert write_text_atomic(target, '{"ok": true}\n') == target
    assert target.read_text() == '{"ok": true}\n'


# -- save_dataset_csv ----------------------------------------------------


def _dataset(devices) -> FingerprintDataset:
    return FingerprintDataset(
        rss_dbm=np.array([[-40.0, -50.0, -60.0], [-45.0, -55.0, -65.0]]),
        labels=np.array([0, 1]),
        rp_positions=np.array([[0.0, 0.0], [1.0, 2.0]]),
        building="Tiny Lab",
        devices=devices,
    )


def test_save_dataset_csv_crash_mid_export_leaves_nothing(tmp_path):
    dataset = _dataset(np.array([_ExplodesOnStr(), _ExplodesOnStr()], dtype=object))
    target = tmp_path / "dataset.csv"
    with pytest.raises(RuntimeError, match="boom"):
        save_dataset_csv(dataset, target)
    assert not target.exists()
    _assert_no_litter(tmp_path)


def test_save_dataset_csv_crash_preserves_previous_export(tmp_path):
    target = tmp_path / "dataset.csv"
    save_dataset_csv(_dataset("BLU"), target)
    good = target.read_text()

    bad = _dataset(np.array([_ExplodesOnStr(), _ExplodesOnStr()], dtype=object))
    with pytest.raises(RuntimeError, match="boom"):
        save_dataset_csv(bad, target)
    assert target.read_text() == good
    restored = load_dataset_csv(target)
    assert restored.num_samples == 2
    assert [p.name for p in tmp_path.iterdir()] == ["dataset.csv"]


# -- results_to_csv ------------------------------------------------------


def test_results_to_csv_crash_mid_export_leaves_nothing(tmp_path):
    rows = [
        {"model": "KNN", "error_m": 1.5},
        {"model": _ExplodesOnStr(), "error_m": 2.5},
    ]
    target = tmp_path / "results.csv"
    with pytest.raises(RuntimeError, match="boom"):
        results_to_csv(rows, target)
    assert not target.exists()
    _assert_no_litter(tmp_path)


def test_results_to_csv_crash_preserves_previous_export(tmp_path):
    target = tmp_path / "results.csv"
    results_to_csv([{"model": "KNN", "error_m": 1.5}], target)
    good = target.read_text()
    with pytest.raises(RuntimeError, match="boom"):
        results_to_csv([{"model": _ExplodesOnStr(), "error_m": 9.0}], target)
    assert target.read_text() == good
