"""Tests for queue workers: the headline determinism + degradation guarantees.

The contract under test (ISSUE: "jobs=1, N workers, and killed-and-resumed
runs produce bit-identical ResultSets"):

* an in-process worker drains a run and :func:`collect_results` equals the
  serial :func:`run_experiment` records byte-for-byte;
* a run interrupted mid-flight resumes executing only the units that had not
  completed, and still merges bit-identically;
* a unit whose worker died (expired lease) is retried by the next worker;
* a unit that exhausts its attempts is parked as failed and its dependents
  are skipped — the run drains degraded instead of deadlocking;
* two spawned worker processes sharing the cache directory produce the same
  records as the serial path.
"""

from __future__ import annotations

import pytest

from repro.api import ExperimentSpec, run_experiment
from repro.eval.engine import ArtifactCache, execute_unit, unit_kind
from repro.queue import (
    STATE_DONE,
    STATE_FAILED,
    STATE_PENDING,
    STATE_SKIPPED,
    LedgerError,
    QueueWorker,
    RunLedger,
    WorkerOptions,
    collect_results,
    render_status,
    run_status,
    work,
)

FAST = WorkerOptions(poll_s=0.01, backoff_s=0.0)


@pytest.fixture(scope="module")
def spec() -> ExperimentSpec:
    return ExperimentSpec(
        models=("KNN", "DNN"),
        profile="quick",
        devices=("OP3",),
        attack_methods=("FGSM",),
        epsilons=(0.1,),
        phi_percents=(10.0,),
        robustness=("ap-outage",),
    )


@pytest.fixture(scope="module")
def serial_records(spec):
    return run_experiment(spec, cache=False).to_records()


@pytest.fixture
def cache(tmp_path) -> ArtifactCache:
    return ArtifactCache(tmp_path / "cache")


class TestSingleWorker:
    def test_drains_run_and_matches_serial(self, spec, cache, serial_records):
        ledger = RunLedger.submit(spec, cache)
        assert work(cache, ledger.run_id, options=FAST)
        assert collect_results(ledger).to_records() == serial_records
        status = run_status(ledger)
        assert status["complete"] and status["succeeded"]
        assert status["units_done"] == status["units_total"] == len(ledger.units)
        rendered = render_status(status)
        assert "run complete" in rendered and ledger.run_id in rendered

    def test_collect_before_completion_errors(self, spec, cache):
        ledger = RunLedger.submit(spec, cache)
        with pytest.raises(LedgerError, match="no result"):
            collect_results(ledger)
        assert len(collect_results(ledger, allow_partial=True)) == 0

    def test_interrupted_run_resumes_without_reexecution(
        self, spec, cache, serial_records
    ):
        ledger = RunLedger.submit(spec, cache)
        total = len(ledger.units)
        # "Kill" the first worker after two units: max_units simulates an
        # interruption at a unit boundary (a mid-unit kill additionally
        # leaves an expired lease, covered below).
        first = QueueWorker(
            ledger, "w1", WorkerOptions(poll_s=0.01, max_units=2)
        )
        first.run()
        done_before = {
            uid for uid, s in ledger.states().items() if s.state == STATE_DONE
        }
        assert len(done_before) == 2
        second = QueueWorker(ledger, "w2", FAST)
        assert second.run()
        # The resuming worker executed exactly the remainder.
        assert second.executed == total - 2
        assert collect_results(ledger).to_records() == serial_records

    def test_expired_lease_is_taken_over(self, spec, cache, serial_records):
        ledger = RunLedger.submit(spec, cache)
        victim = ledger.units[0].id
        # A worker died holding this lease: already expired, never renewed.
        assert ledger.acquire_lease(victim, "dead:0", ttl_s=0.0)
        worker = QueueWorker(ledger, "w2", WorkerOptions(poll_s=0.01, backoff_s=0.0))
        assert worker.run()
        state = ledger.unit_state(victim)
        assert state.state == STATE_DONE
        assert state.attempts == 1  # the broken lease booked the dead attempt
        assert collect_results(ledger).to_records() == serial_records


class TestGracefulDegradation:
    def test_failed_unit_parks_and_dependents_skip(self, spec, cache):
        ledger = RunLedger.submit(spec, cache)

        def flaky_execute(unit, config, cache_):
            if unit_kind(unit) == "train" and unit.task.label == "DNN":
                raise RuntimeError("injected training failure")
            return execute_unit(unit, config, cache_)

        worker = QueueWorker(
            ledger,
            "w1",
            WorkerOptions(poll_s=0.01, backoff_s=0.0, max_attempts=2),
            execute=flaky_execute,
        )
        assert not worker.run()  # run drains, but degraded
        states = ledger.states()
        by_id = ledger.units_by_id()
        failed = [u for u, s in states.items() if s.state == STATE_FAILED]
        skipped = [u for u, s in states.items() if s.state == STATE_SKIPPED]
        assert len(failed) == 1
        assert by_id[failed[0]].kind == "train"
        assert states[failed[0]].attempts == 2
        # DNN's eval + scenario units depend on the failed train unit.
        assert {by_id[u].kind for u in skipped} == {"eval", "scenario"}
        assert all(failed[0] in by_id[u].deps for u in skipped)
        # Every KNN unit still completed.
        done_kinds = [by_id[u].kind for u, s in states.items() if s.state == STATE_DONE]
        assert sorted(done_kinds) == ["campaign", "eval", "scenario", "train"]

        # Partial collection yields exactly the surviving model's records.
        partial = collect_results(ledger, allow_partial=True)
        assert partial.models() == ["KNN"]
        with pytest.raises(LedgerError, match="no result"):
            collect_results(ledger)
        status = run_status(ledger)
        assert status["complete"] and not status["succeeded"]
        assert len(status["failed_units"]) == 3
        assert "injected training failure" in render_status(status)

    def test_transient_failure_is_retried_to_success(self, spec, cache):
        ledger = RunLedger.submit(spec, cache)
        calls = {"n": 0}

        def flaky_once(unit, config, cache_):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return execute_unit(unit, config, cache_)

        worker = QueueWorker(
            ledger,
            "w1",
            WorkerOptions(poll_s=0.01, backoff_s=0.0, max_attempts=3),
            execute=flaky_once,
        )
        assert worker.run()
        states = ledger.states()
        assert all(s.state == STATE_DONE for s in states.values())
        assert sum(s.attempts for s in states.values()) == 1


class TestMultiProcess:
    def test_two_worker_processes_match_serial(self, spec, cache, serial_records):
        ledger = RunLedger.submit(spec, cache)
        assert work(
            cache,
            ledger.run_id,
            workers=2,
            options=WorkerOptions(poll_s=0.05),
        )
        assert collect_results(ledger).to_records() == serial_records
        status = run_status(ledger)
        assert status["succeeded"]
        assert len(status["workers"]) == 2

    def test_custom_executor_cannot_cross_processes(self, spec, cache):
        ledger = RunLedger.submit(spec, cache)
        with pytest.raises(ValueError, match="cannot cross process"):
            work(cache, ledger.run_id, workers=2, execute=lambda *a: {})
