"""Tests for the durable run ledger: manifests, states, leases, results."""

from __future__ import annotations

import json
import time

import pytest

from repro.api import ExperimentSpec
from repro.eval.engine import ArtifactCache
from repro.queue import (
    STATE_DONE,
    STATE_FAILED,
    STATE_PENDING,
    STATE_SKIPPED,
    LedgerError,
    RunLedger,
    queue_root,
)


@pytest.fixture
def spec() -> ExperimentSpec:
    return ExperimentSpec(
        models=("KNN",),
        profile="quick",
        devices=("OP3",),
        attack_methods=("FGSM",),
        epsilons=(0.1,),
        phi_percents=(10.0,),
    )


@pytest.fixture
def cache(tmp_path) -> ArtifactCache:
    return ArtifactCache(tmp_path / "cache")


class TestSubmit:
    def test_creates_manifest_and_directories(self, spec, cache):
        ledger = RunLedger.submit(spec, cache)
        assert (ledger.root / "manifest.json").is_file()
        for sub in ("state", "leases", "results", "workers"):
            assert (ledger.root / sub).is_dir()
        manifest = json.loads((ledger.root / "manifest.json").read_text())
        assert manifest["run_id"] == ledger.run_id
        assert manifest["spec"] == spec.to_dict()
        assert manifest["stages"] == {
            "campaign": 1,
            "train": 1,
            "eval": 1,
            "scenario": 0,
        }

    def test_run_id_is_content_addressed(self, spec, cache, tmp_path):
        ledger = RunLedger.submit(spec, cache)
        assert ledger.run_id == RunLedger.derive_run_id(spec)
        # Same spec, different cache -> same id; different spec -> different.
        other_cache = ArtifactCache(tmp_path / "other")
        assert RunLedger.submit(spec, other_cache).run_id == ledger.run_id
        bigger = ExperimentSpec(models=("KNN", "DNN"), profile="quick")
        assert RunLedger.derive_run_id(bigger) != ledger.run_id

    def test_resubmit_same_run_errors(self, spec, cache):
        RunLedger.submit(spec, cache)
        with pytest.raises(LedgerError, match="already exists"):
            RunLedger.submit(spec, cache)

    def test_explicit_run_id_and_validation(self, spec, cache):
        ledger = RunLedger.submit(spec, cache, run_id="my-run")
        assert ledger.root == queue_root(cache) / "my-run"
        with pytest.raises(LedgerError, match="invalid run id"):
            RunLedger.submit(spec, cache, run_id="bad/../id")

    def test_manifest_units_carry_dependency_edges(self, spec, cache):
        ledger = RunLedger.submit(spec, cache)
        units = ledger.units
        by_kind = {entry.kind: entry for entry in units}
        assert by_kind["campaign"].deps == ()
        assert by_kind["train"].deps == (by_kind["campaign"].id,)
        assert by_kind["eval"].deps == (by_kind["train"].id,)
        # ids are content-addressed: <kind>-<12 hex chars>
        for entry in units:
            kind, _, digest = entry.id.partition("-")
            assert kind == entry.kind
            assert len(digest) == 12

    def test_open_unknown_run_errors(self, spec, cache):
        RunLedger.submit(spec, cache, run_id="known")
        with pytest.raises(LedgerError, match="known"):
            RunLedger.open(cache, "nope")

    def test_plan_rebuild_matches_manifest(self, spec, cache):
        run_id = RunLedger.submit(spec, cache).run_id
        reopened = RunLedger.open(cache, run_id)
        plan_units = reopened.plan_units_by_id()
        assert set(plan_units) == {entry.id for entry in reopened.units}

    def test_plan_rejects_version_drift(self, spec, cache, monkeypatch):
        run_id = RunLedger.submit(spec, cache).run_id
        # Simulate a worker running different code: perturb a manifest id.
        reopened = RunLedger.open(cache, run_id)
        manifest = reopened.manifest
        manifest["units"][0]["id"] = "campaign-000000000000"
        with pytest.raises(LedgerError, match="does not match"):
            reopened.plan


class TestUnitState:
    def test_absent_state_file_is_pending(self, spec, cache):
        ledger = RunLedger.submit(spec, cache)
        state = ledger.unit_state(ledger.units[0].id)
        assert state.state == STATE_PENDING
        assert state.attempts == 0
        assert not state.terminal

    def test_mark_done_and_skipped(self, spec, cache):
        ledger = RunLedger.submit(spec, cache)
        uid = ledger.units[0].id
        ledger.mark_done(uid, "w1")
        assert ledger.unit_state(uid).state == STATE_DONE
        # skipped never downgrades a terminal unit
        ledger.mark_skipped(uid, "dep failed")
        assert ledger.unit_state(uid).state == STATE_DONE

    def test_failed_attempts_backoff_then_park(self, spec, cache):
        ledger = RunLedger.submit(spec, cache)
        uid = ledger.units[0].id
        outcome = ledger.record_failed_attempt(
            uid, "w1", "boom", max_attempts=3, backoff_s=10.0
        )
        state = ledger.unit_state(uid)
        assert outcome == STATE_PENDING
        assert state.attempts == 1
        assert state.not_before_unix > time.time() + 5.0  # backoff scheduled
        outcome = ledger.record_failed_attempt(
            uid, "w1", "boom", max_attempts=3, backoff_s=10.0
        )
        assert outcome == STATE_PENDING
        outcome = ledger.record_failed_attempt(
            uid, "w1", "boom", max_attempts=3, backoff_s=10.0
        )
        state = ledger.unit_state(uid)
        assert outcome == STATE_FAILED
        assert state.state == STATE_FAILED
        assert state.attempts == 3
        assert "boom" in state.error


class TestLeases:
    def test_acquire_is_mutually_exclusive(self, spec, cache):
        ledger = RunLedger.submit(spec, cache)
        uid = ledger.units[0].id
        assert ledger.acquire_lease(uid, "w1", ttl_s=60.0)
        assert not ledger.acquire_lease(uid, "w2", ttl_s=60.0)
        lease = ledger.read_lease(uid)
        assert lease.worker == "w1"
        assert not lease.expired()

    def test_renew_extends_only_for_holder(self, spec, cache):
        ledger = RunLedger.submit(spec, cache)
        uid = ledger.units[0].id
        ledger.acquire_lease(uid, "w1", ttl_s=60.0)
        before = ledger.read_lease(uid).expires_unix
        time.sleep(0.02)
        assert ledger.renew_lease(uid, "w1", ttl_s=120.0)
        assert ledger.read_lease(uid).expires_unix > before
        assert ledger.read_lease(uid).renewals == 1
        assert not ledger.renew_lease(uid, "w2", ttl_s=120.0)

    def test_release_only_for_holder(self, spec, cache):
        ledger = RunLedger.submit(spec, cache)
        uid = ledger.units[0].id
        ledger.acquire_lease(uid, "w1", ttl_s=60.0)
        ledger.release_lease(uid, "w2")  # not the holder: no-op
        assert ledger.read_lease(uid) is not None
        ledger.release_lease(uid, "w1")
        assert ledger.read_lease(uid) is None
        assert ledger.acquire_lease(uid, "w2", ttl_s=60.0)

    def test_expired_lease_break_consumes_attempt(self, spec, cache):
        ledger = RunLedger.submit(spec, cache)
        uid = ledger.units[0].id
        ledger.acquire_lease(uid, "dead-worker", ttl_s=0.0)  # expires instantly
        outcome = ledger.record_expired_attempt(
            uid, "breaker", max_attempts=3, backoff_s=0.0, grace_s=0.0
        )
        assert outcome == STATE_PENDING
        assert ledger.read_lease(uid) is None
        state = ledger.unit_state(uid)
        assert state.attempts == 1
        assert "dead-worker" in state.error

    def test_live_lease_is_not_breakable(self, spec, cache):
        ledger = RunLedger.submit(spec, cache)
        uid = ledger.units[0].id
        ledger.acquire_lease(uid, "w1", ttl_s=60.0)
        assert ledger.record_expired_attempt(uid, "w2", 3, 0.0) is None
        assert ledger.read_lease(uid).worker == "w1"

    def test_nominally_expired_lease_survives_within_grace(self, spec, cache):
        """A lease just past expiry is NOT breakable until the grace elapses.

        This is the clock-skew guard: the expiry stamp carries the holder's
        wall clock, so a breaker whose clock runs a little ahead sees the
        lease "expired" the moment it is written — and before the grace fix
        it would book the healthy holder's attempt as a death.
        """
        ledger = RunLedger.submit(spec, cache)
        uid = ledger.units[0].id
        ledger.acquire_lease(uid, "skewed-holder", ttl_s=0.0)
        # Default grace applies: the break must be refused even though the
        # nominal expiry has passed.
        assert ledger.record_expired_attempt(uid, "breaker", 3, 0.0) is None
        assert ledger.read_lease(uid).worker == "skewed-holder"
        assert ledger.unit_state(uid).attempts == 0

    def test_backwards_clock_on_holder_does_not_lose_lease(self, spec, cache):
        """A holder whose clock stepped backwards still holds within grace.

        Simulated by writing a lease whose expiry is slightly in the past
        relative to the breaker's clock (what a backwards NTP step on the
        holder produces).  The breaker must wait out the grace margin, and a
        heartbeat renewal in that window must restore the lease to live.
        """
        import time as _time

        from repro.queue import LEASE_BREAK_GRACE_S, Lease

        ledger = RunLedger.submit(spec, cache)
        uid = ledger.units[0].id
        ledger.acquire_lease(uid, "holder", ttl_s=30.0)
        now = _time.time()
        skewed = Lease(
            worker="holder",
            acquired_unix=now - 31.0,
            expires_unix=now - 1.0,  # one second "expired" by our clock
            renewals=0,
        )
        assert skewed.expired(now)  # nominally expired...
        assert not skewed.expired(now, grace_s=LEASE_BREAK_GRACE_S)  # ...but not breakable
        # Far past the grace the breaker may act.
        assert skewed.expired(now + LEASE_BREAK_GRACE_S + 1.0, grace_s=LEASE_BREAK_GRACE_S)
        # A heartbeat renewal inside the grace window keeps the lease.
        assert ledger.renew_lease(uid, "holder", ttl_s=30.0)
        assert not ledger.read_lease(uid).expired(
            _time.time(), grace_s=LEASE_BREAK_GRACE_S
        )


class TestResultsAndWorkers:
    def test_result_round_trip(self, spec, cache):
        ledger = RunLedger.submit(spec, cache)
        uid = ledger.units[0].id
        assert ledger.read_result(uid) is None
        document = {"stats": [{"mean": 1.25, "count": 4}]}
        ledger.write_result(uid, document)
        assert ledger.read_result(uid) == document

    def test_worker_records(self, spec, cache):
        ledger = RunLedger.submit(spec, cache)
        ledger.record_worker("host:1", status="running", unit="u1")
        ledger.record_worker("host:2", status="idle")
        workers = {w["worker"]: w for w in ledger.workers()}
        assert workers["host:1"]["status"] == "running"
        assert workers["host:2"]["status"] == "idle"

    def test_is_complete(self, spec, cache):
        ledger = RunLedger.submit(spec, cache)
        assert not ledger.is_complete()
        for entry in ledger.units[:-1]:
            ledger.mark_done(entry.id, "w1")
        assert not ledger.is_complete()
        ledger.mark_skipped(ledger.units[-1].id, "because")
        assert ledger.is_complete()  # terminal, though degraded
        states = ledger.states()
        assert states[ledger.units[-1].id].state == STATE_SKIPPED
