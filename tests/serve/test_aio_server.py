"""Integration tests for the asyncio serving front end (``repro.serve.aio``)."""

from __future__ import annotations

import json
import socket
import threading

import numpy as np
import pytest

from repro.api import LocalizationService
from repro.serve import ModelStore, ServiceClient
from repro.serve.aio.protocol import CONTENT_MSGPACK, CONTENT_NDARRAY, msgpack_available
from repro.serve.aio.server import AioServerThread


@pytest.fixture()
def published_store(tiny_campaign, tmp_path) -> ModelStore:
    store = ModelStore(tmp_path / "store")
    service = LocalizationService("KNN", params={"k": 3}).fit(tiny_campaign.train)
    store.publish(service, "knn", tags=("prod",))
    return store


@pytest.fixture()
def aio_server(published_store):
    with AioServerThread(
        published_store,
        routes={"building-1/knn": "knn@prod"},
        max_batch=8,
        max_wait_ms=2.0,
    ) as server:
        yield server


@pytest.fixture()
def client(aio_server) -> ServiceClient:
    with ServiceClient(aio_server.base_url) as client:
        yield client


class TestBitIdentity:
    def test_json_bodies_match_direct_service(self, client, published_store, tiny_campaign):
        test = tiny_campaign.test_for("S7")
        direct = published_store.resolve("knn@prod").localize(test.features)
        via_http = client.localize(test.features, model="knn@prod", probabilities=True)
        np.testing.assert_array_equal(via_http.labels, direct.labels)
        np.testing.assert_array_equal(via_http.coordinates, direct.coordinates)
        np.testing.assert_array_equal(via_http.error_estimate, direct.error_estimate)
        np.testing.assert_array_equal(via_http.probabilities, direct.probabilities)

    def test_binary_bodies_match_direct_service(
        self, aio_server, published_store, tiny_campaign
    ):
        test = tiny_campaign.test_for("S7")
        direct = published_store.resolve("knn@prod").localize(test.features)
        with ServiceClient(aio_server.base_url, content_type=CONTENT_NDARRAY) as client:
            via_http = client.localize(test.features, model="knn@prod")
        assert via_http.labels.tobytes() == np.asarray(direct.labels).tobytes()
        assert via_http.coordinates.tobytes() == direct.coordinates.tobytes()

    @pytest.mark.skipif(not msgpack_available(), reason="msgpack not installed")
    def test_msgpack_bodies_match_direct_service(
        self, aio_server, published_store, tiny_campaign
    ):
        test = tiny_campaign.test_for("S7")
        direct = published_store.resolve("knn@prod").localize(test.features)
        with ServiceClient(aio_server.base_url, content_type=CONTENT_MSGPACK) as client:
            via_http = client.localize(test.features, model="knn@prod")
        np.testing.assert_array_equal(via_http.labels, direct.labels)

    def test_routes_flat_and_empty_requests(self, client, tiny_campaign):
        features = tiny_campaign.test_for("S7").features
        for endpoint in ("knn", "knn@prod", "knn@v1", "building-1/knn"):
            assert client.localize(features[:2], model=endpoint).labels.shape == (2,)
        assert client.localize(features[0], model="knn").labels.shape == (1,)
        empty = np.empty((0, tiny_campaign.train.num_aps))
        assert client.localize(empty, model="knn").labels.shape == (0,)


class TestKeepAliveAndPipelining:
    def test_connection_is_reused(self, client, tiny_campaign):
        features = tiny_campaign.test_for("S7").features
        for _ in range(5):
            client.localize(features[:1], model="knn")
        client.health()
        client.metrics()
        assert client.connections_opened == 1

    def test_pipelined_requests_answered_in_order(self, aio_server):
        request = (
            f"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
            f"GET /v1/models HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
        ).encode()
        with socket.create_connection(("127.0.0.1", aio_server.port), timeout=10) as sock:
            sock.sendall(request)  # both requests in one write, no read between
            blob = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                blob += chunk
        text = blob.decode()
        assert text.count("HTTP/1.1 200") == 2
        first, second = text.split("HTTP/1.1 200")[1:]
        assert '"status": "ok"' in first
        assert '"served-model"' in second

    def test_response_content_type_mirrors_request(self, aio_server, tiny_campaign):
        features = tiny_campaign.test_for("S7").features[:1]
        with ServiceClient(aio_server.base_url, content_type=CONTENT_NDARRAY) as client:
            result = client.localize(features, model="knn")
        assert result.labels.shape == (1,)


class TestErrorMapping:
    def _post(self, server, body: bytes, content_type: str) -> int:
        import http.client

        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            connection.request(
                "POST", "/v1/localize", body=body, headers={"Content-Type": content_type}
            )
            response = connection.getresponse()
            response.read()
            return response.status
        finally:
            connection.close()

    def test_unknown_model_is_404(self, client, tiny_campaign):
        with pytest.raises(RuntimeError, match="404"):
            client.localize(tiny_campaign.test_for("S7").features, model="ghost@prod")

    def test_wrong_ap_count_is_400(self, client):
        with pytest.raises(RuntimeError, match="400.*APs"):
            client.localize(np.zeros((1, 3)), model="knn")

    def test_malformed_json_is_400(self, aio_server):
        assert self._post(aio_server, b"{not json", "application/json") == 400

    def test_missing_fields_are_400(self, aio_server):
        for payload in ({}, {"model": "knn"}, {"fingerprints": [[0.0]]}):
            status = self._post(
                aio_server, json.dumps(payload).encode(), "application/json"
            )
            assert status == 400

    def test_unsupported_content_type_is_415(self, aio_server):
        assert self._post(aio_server, b"a,b\n1,2", "text/csv") == 415

    @pytest.mark.skipif(msgpack_available(), reason="msgpack installed")
    def test_msgpack_without_library_is_415(self, aio_server):
        assert self._post(aio_server, b"\x81", CONTENT_MSGPACK) == 415

    def test_unknown_path_is_404(self, aio_server):
        import urllib.error
        import urllib.request

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{aio_server.base_url}/v2/teleport", timeout=10)
        assert excinfo.value.code == 404

    def test_oversized_header_is_431(self, aio_server):
        request = (
            "GET /healthz HTTP/1.1\r\nHost: x\r\nX-Pad: " + "a" * (80 * 1024) + "\r\n\r\n"
        ).encode()
        with socket.create_connection(("127.0.0.1", aio_server.port), timeout=10) as sock:
            sock.sendall(request)
            blob = sock.recv(65536)
        assert b"431" in blob.split(b"\r\n", 1)[0]


class TestIntrospection:
    def test_health_announces_aio_frontend(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["frontend"] == "aio"
        assert "application/x-repro-ndarray" in health["content_types"]

    def test_metrics_shape_matches_stdlib_tier(self, client, tiny_campaign):
        features = tiny_campaign.test_for("S7").features
        client.localize(features, model="knn@prod")
        metrics = client.metrics()
        endpoint = metrics["gateway"]["endpoints"]["knn@prod"]
        assert endpoint["requests"] == 1
        assert endpoint["fingerprints"] == features.shape[0]
        assert metrics["gateway"]["loaded"] == ["knn@v1"]
        assert metrics["shadow"] == {}


class TestShadowRouting:
    def test_mirror_route_populates_shadow_metrics(self, published_store, tiny_campaign):
        routes = {"b1/knn": "knn@prod,shadow=knn@v1,fraction=1.0"}
        features = tiny_campaign.test_for("S7").features
        direct = published_store.resolve("knn@prod").localize(features)
        with AioServerThread(published_store, routes=routes) as server:
            with ServiceClient(server.base_url) as client:
                for _ in range(6):
                    result = client.localize(features, model="b1/knn")
                    # Mirroring must never change what the primary returns.
                    np.testing.assert_array_equal(result.labels, direct.labels)
                server.drain_shadow_tasks(timeout=30.0)
                shadow = client.metrics()["shadow"]["b1/knn"]
        assert shadow["requests"] == 6
        assert shadow["mirrored"] == 6
        assert shadow["shadow_served"] == 0
        assert shadow["shadow_errors"] == 0
        # Same model on both arms: the paired comparison sees zero mismatches.
        assert shadow["label_mismatches"] == 0
        assert shadow["compared"] == shadow["primary"]["fingerprints"]
        assert shadow["shadow"]["fingerprints"] == 6 * features.shape[0]

    def test_split_route_serves_shadow_for_fraction(self, published_store, tiny_campaign):
        routes = {"b1/knn": "knn@prod,shadow=knn@v1,fraction=1.0,policy=split"}
        features = tiny_campaign.test_for("S7").features
        with AioServerThread(published_store, routes=routes) as server:
            with ServiceClient(server.base_url) as client:
                result = client.localize(features, model="b1/knn")
                assert result.labels.shape == (features.shape[0],)
                shadow = client.metrics()["shadow"]["b1/knn"]
        assert shadow["shadow_served"] == 1
        assert shadow["mirrored"] == 0

    def test_models_document_lists_shadow_routes(self, published_store):
        routes = {"b1/knn": "knn@prod,shadow=knn@v1,fraction=0.5"}
        with AioServerThread(published_store, routes=routes) as server:
            with ServiceClient(server.base_url) as client:
                document = client.models()
        assert document["shadow_routes"]["b1/knn"]["shadow"] == "knn@v1"


class _OneShotCloseServer:
    """Accepts connections; closes the first one after a single response.

    Reproduces a server-side idle-timeout drop so the keep-alive client's
    retry path can be exercised deterministically.
    """

    RESPONSE = (
        b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
        b"Content-Length: 16\r\n\r\n"
        b'{"status": "ok"}'
    )

    def __init__(self) -> None:
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.port = self._listener.getsockname()[1]
        self.requests_served = 0
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _read_request(self, connection) -> bool:
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = connection.recv(65536)
            if not chunk:
                return False
            data += chunk
        return True

    def _serve(self) -> None:
        # First connection: one response, then close (simulated idle drop).
        first, _ = self._listener.accept()
        with first:
            if self._read_request(first):
                first.sendall(self.RESPONSE)
                self.requests_served += 1
        # Second connection: serve until the client hangs up.
        second, _ = self._listener.accept()
        with second:
            while self._read_request(second):
                second.sendall(self.RESPONSE)
                self.requests_served += 1

    def close(self) -> None:
        self._listener.close()


class TestClientRetry:
    def test_client_retries_once_on_idle_close(self):
        server = _OneShotCloseServer()
        try:
            with ServiceClient(f"http://127.0.0.1:{server.port}") as client:
                assert client.health() == {"status": "ok"}
                assert client.connections_opened == 1
                # The server dropped the idle connection after that response;
                # the next call must transparently reconnect and succeed.
                assert client.health() == {"status": "ok"}
                assert client.connections_opened == 2
                # And the fresh connection keeps being reused afterwards.
                assert client.health() == {"status": "ok"}
                assert client.connections_opened == 2
        finally:
            server.close()

    def test_client_rejects_non_http_urls(self):
        with pytest.raises(ValueError):
            ServiceClient("ftp://127.0.0.1:8080")
