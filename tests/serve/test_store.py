"""Tests for the versioned, content-addressed :class:`repro.serve.ModelStore`."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import LocalizationService
from repro.registry import LOCALIZERS
from repro.serve import ModelStore, StoreError
from repro.serve.store import arrays_digest

#: Cheap constructor params per registry name, for the sweep over every
#: persistable localizer.  Anything not listed is built with defaults.
CHEAP_PARAMS = {
    "CALLOC": {
        "embed_dim": 16,
        "attention_dim": 8,
        "num_lessons": 2,
        "epochs_per_lesson": 2,
        "seed": 0,
    },
    "DNN": {"hidden_dims": (16,), "epochs": 3, "seed": 0},
    "CNN": {"channels": 4, "epochs": 3, "seed": 0},
    "ANVIL": {"embed_dim": 16, "num_heads": 2, "epochs": 3, "seed": 0},
    "AdvLoc": {"hidden_dims": (16,), "epochs": 3, "warmup_epochs": 1, "seed": 0},
}


def _persistable_localizers():
    """Registry names whose localizer implements the state-array protocol."""
    names = []
    for name in LOCALIZERS.names():
        instance = LOCALIZERS.create(name, **CHEAP_PARAMS.get(name, {}))
        if callable(getattr(instance, "state_arrays", None)) and callable(
            getattr(instance, "load_state_arrays", None)
        ):
            names.append(name)
    return names


class TestPersistenceRoundTrip:
    """Satellite: save/load and publish/resolve for every persistable localizer."""

    @pytest.mark.parametrize("name", _persistable_localizers())
    def test_save_load_round_trip(self, name, tiny_campaign, tmp_path):
        service = LocalizationService(name, params=CHEAP_PARAMS.get(name, {}))
        service.fit(tiny_campaign.train)
        test = tiny_campaign.test_for("S7")
        expected = service.localize(test)
        path = service.save(tmp_path / f"{name}.npz")
        restored = LocalizationService.load(path)
        assert restored.model_name == name
        got = restored.localize(test)
        np.testing.assert_array_equal(got.labels, expected.labels)
        np.testing.assert_array_equal(got.coordinates, expected.coordinates)

    @pytest.mark.parametrize("name", _persistable_localizers())
    def test_publish_resolve_round_trip(self, name, tiny_campaign, tmp_path):
        service = LocalizationService(name, params=CHEAP_PARAMS.get(name, {}))
        service.fit(tiny_campaign.train)
        test = tiny_campaign.test_for("BLU")
        store = ModelStore(tmp_path / "store")
        version = store.publish(service, name.lower(), tags=("prod",))
        assert version.version == 1
        assert version.tags == ("prod",)
        restored = store.resolve(f"{name.lower()}@prod")
        np.testing.assert_array_equal(
            restored.localize(test).labels, service.localize(test).labels
        )

    def test_persistable_sweep_covers_expected_models(self):
        names = _persistable_localizers()
        assert {"KNN", "CALLOC", "DNN", "CNN", "ANVIL", "AdvLoc"} <= set(names)


@pytest.fixture()
def fitted_knn_service(tiny_campaign) -> LocalizationService:
    return LocalizationService("KNN", params={"k": 3}).fit(tiny_campaign.train)


class TestVersioning:
    def test_publish_assigns_increasing_versions(self, fitted_knn_service, tiny_campaign, tmp_path):
        store = ModelStore(tmp_path)
        v1 = store.publish(fitted_knn_service, "knn")
        other = LocalizationService("KNN", params={"k": 5}).fit(tiny_campaign.train)
        v2 = store.publish(other, "knn")
        assert (v1.version, v2.version) == (1, 2)
        assert store.lookup("knn").version == 2  # bare name -> latest
        assert store.lookup("knn@v1").digest == v1.digest
        assert store.lookup("knn@1").digest == v1.digest
        assert store.lookup("knn@latest").digest == v2.digest

    def test_republish_identical_artifact_dedupes(self, fitted_knn_service, tmp_path):
        store = ModelStore(tmp_path)
        v1 = store.publish(fitted_knn_service, "knn")
        again = store.publish(fitted_knn_service, "knn", tags=("prod",))
        assert again.version == v1.version
        assert len(store.versions("knn")) == 1
        assert store.lookup("knn@prod").version == 1

    def test_tags_move_with_publish_and_promote(self, fitted_knn_service, tiny_campaign, tmp_path):
        store = ModelStore(tmp_path)
        store.publish(fitted_knn_service, "knn", tags=("prod",))
        other = LocalizationService("KNN", params={"k": 1}).fit(tiny_campaign.train)
        store.publish(other, "knn", tags=("prod",))
        assert store.lookup("knn@prod").version == 2
        rolled = store.promote("knn@v1", "prod")
        assert rolled.version == 1
        assert store.lookup("knn@prod").version == 1

    def test_republish_heals_missing_artifact(self, fitted_knn_service, tiny_campaign, tmp_path):
        """Regression: the dedupe branch skipped the artifact-existence check,
        so republishing could not repair a store whose artifact files were
        lost while its manifests survived."""
        store = ModelStore(tmp_path)
        version = store.publish(fitted_knn_service, "knn")
        artifact = store.artifacts.path_for("service", version.digest, "npz")
        artifact.unlink()
        healed = store.publish(fitted_knn_service, "knn")
        assert healed.version == version.version  # still deduped, no new version
        test = tiny_campaign.test_for("S7")
        np.testing.assert_array_equal(
            store.resolve("knn").localize(test).labels,
            fitted_knn_service.localize(test).labels,
        )

    def test_content_addressing_shares_storage(self, fitted_knn_service, tmp_path):
        store = ModelStore(tmp_path)
        a = store.publish(fitted_knn_service, "knn-a")
        b = store.publish(fitted_knn_service, "knn-b")
        assert a.digest == b.digest
        artifacts = list((store.root / "artifacts").rglob("*.npz"))
        assert len(artifacts) == 1

    def test_digest_is_content_sensitive(self, fitted_knn_service):
        arrays = fitted_knn_service.state_arrays()
        digest = arrays_digest(arrays)
        assert digest == arrays_digest(dict(arrays))  # order-insensitive
        mutated = dict(arrays)
        mutated["service/rp_positions"] = mutated["service/rp_positions"] + 1.0
        assert arrays_digest(mutated) != digest


class TestErrorsAndInspection:
    def test_unknown_model_raises(self, tmp_path):
        store = ModelStore(tmp_path)
        with pytest.raises(StoreError, match="unknown model"):
            store.resolve("ghost")

    def test_unknown_selector_raises(self, fitted_knn_service, tmp_path):
        store = ModelStore(tmp_path)
        store.publish(fitted_knn_service, "knn")
        with pytest.raises(StoreError, match="unknown tag or version"):
            store.lookup("knn@staging")
        with pytest.raises(StoreError, match="no version"):
            store.lookup("knn@v9")

    def test_invalid_names_and_tags_rejected(self, fitted_knn_service, tmp_path):
        store = ModelStore(tmp_path)
        with pytest.raises(StoreError, match="invalid model name"):
            store.publish(fitted_knn_service, "KNN Prod")
        with pytest.raises(StoreError, match="numeric tags"):
            store.publish(fitted_knn_service, "knn", tags=("v2",))

    def test_unfitted_service_cannot_publish(self, tmp_path):
        store = ModelStore(tmp_path)
        with pytest.raises(RuntimeError, match="unfitted"):
            store.publish(LocalizationService("KNN"), "knn")

    def test_contains_list_inspect_catalog(self, fitted_knn_service, tmp_path):
        store = ModelStore(tmp_path)
        store.publish(fitted_knn_service, "knn", tags=("prod",))
        assert "knn" in store
        assert "knn@prod" in store
        assert "ghost" not in store
        assert store.list_models() == ["knn"]
        inspected = store.inspect("knn@prod")
        assert inspected["model"] == "KNN"
        assert inspected["params"] == {"k": 3}
        assert inspected["artifact_bytes"] > 0
        json.dumps(inspected)  # JSON-ready
        catalog = store.catalog()
        assert catalog[0]["name"] == "knn"
        assert catalog[0]["tags"] == ["prod"]
        assert "KNN" in catalog[0]["summary"]

    def test_export_round_trips_without_store(self, fitted_knn_service, tiny_campaign, tmp_path):
        store = ModelStore(tmp_path / "store")
        store.publish(fitted_knn_service, "knn", tags=("prod",))
        exported = store.export("knn@prod", tmp_path / "standalone.npz")
        restored = LocalizationService.load(exported)
        test = tiny_campaign.test_for("S7")
        np.testing.assert_array_equal(
            restored.localize(test).labels, fitted_knn_service.localize(test).labels
        )
