"""Tests for ``repro serve``'s HTTP API and the :class:`ServiceClient`."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.api import LocalizationService
from repro.serve import ModelStore, ServiceClient, create_server


@pytest.fixture()
def published_store(tiny_campaign, tmp_path) -> ModelStore:
    store = ModelStore(tmp_path / "store")
    service = LocalizationService("KNN", params={"k": 3}).fit(tiny_campaign.train)
    store.publish(service, "knn", tags=("prod",))
    return store


@pytest.fixture()
def running_server(published_store):
    server = create_server(
        published_store,
        port=0,
        routes={"building-1/knn": "knn@prod"},
        max_batch=8,
        max_wait_ms=2.0,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.app.close()
        server.server_close()


@pytest.fixture()
def client(running_server) -> ServiceClient:
    host, port = running_server.server_address[:2]
    return ServiceClient(f"http://{host}:{port}")


class TestLocalizeEndpoint:
    def test_http_predictions_bit_identical_to_direct(
        self, client, published_store, tiny_campaign
    ):
        test = tiny_campaign.test_for("S7")
        direct = published_store.resolve("knn@prod").localize(test.features)
        via_http = client.localize(test.features, model="knn@prod", probabilities=True)
        np.testing.assert_array_equal(via_http.labels, direct.labels)
        np.testing.assert_array_equal(via_http.coordinates, direct.coordinates)
        np.testing.assert_array_equal(via_http.error_estimate, direct.error_estimate)
        np.testing.assert_array_equal(via_http.probabilities, direct.probabilities)

    def test_routes_and_bare_names_serve(self, client, tiny_campaign):
        test = tiny_campaign.test_for("S7")
        for endpoint in ("knn", "knn@prod", "knn@v1", "building-1/knn"):
            result = client.localize(test.features[:2], model=endpoint)
            assert result.labels.shape == (2,)

    def test_single_flat_fingerprint(self, client, tiny_campaign):
        single = tiny_campaign.test_for("S7").features[0]
        result = client.localize(single, model="knn")
        assert result.labels.shape == (1,)
        assert result.coordinates.shape == (1, 2)

    def test_empty_batch(self, client, tiny_campaign):
        empty = np.empty((0, tiny_campaign.train.num_aps))
        result = client.localize(empty, model="knn")
        assert result.labels.shape == (0,)
        assert result.coordinates.shape == (0, 2)

    def test_unknown_model_is_404(self, client, tiny_campaign):
        with pytest.raises(RuntimeError, match="404"):
            client.localize(tiny_campaign.test_for("S7").features, model="ghost@prod")

    def test_unknown_models_never_spawn_batchers(self, client, running_server, tiny_campaign):
        """Regression: each batcher owns a thread; bogus model names must not
        accumulate one batcher (and thread) per name."""
        features = tiny_campaign.test_for("S7").features
        for bogus in ("x1", "x2", "x3"):
            with pytest.raises(RuntimeError, match="404"):
                client.localize(features, model=bogus)
        assert list(running_server.app._batchers) == []
        client.localize(features, model="knn")
        assert list(running_server.app._batchers) == ["knn"]

    def test_wrong_ap_count_is_400_with_clear_message(self, client):
        with pytest.raises(RuntimeError, match="400.*APs"):
            client.localize(np.zeros((1, 3)), model="knn")

    def test_malformed_json_is_400(self, client):
        request = urllib.request.Request(
            f"{client.base_url}/v1/localize",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_missing_fields_are_400(self, client):
        for payload in ({}, {"model": "knn"}, {"fingerprints": [[0.0]]}):
            request = urllib.request.Request(
                f"{client.base_url}/v1/localize",
                data=json.dumps(payload).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 400

    def test_unknown_path_is_404(self, client):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{client.base_url}/v2/teleport", timeout=10)
        assert excinfo.value.code == 404


class TestIntrospectionEndpoints:
    def test_healthz_schema(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["models"] == 1
        assert health["batching"] is True
        assert "version" in health and "uptime_s" in health

    def test_models_catalog_shares_registry_format(self, client):
        from repro.registry import LOCALIZERS, catalog_document

        document = client.models()
        reference = catalog_document("model", LOCALIZERS.catalog())
        # One envelope format: kind/count/entries with name/tags/summary rows.
        assert set(document) >= set(reference)
        assert document["kind"] == "served-model"
        assert document["count"] == 1
        entry = document["entries"][0]
        assert {"name", "tags", "summary"} <= set(entry)
        assert entry["name"] == "knn"
        assert entry["tags"] == ["prod"]
        assert entry["latest"]["model"] == "KNN"
        assert document["routes"] == {"building-1/knn": "knn@prod"}

    def test_metrics_counts_requests_and_batches(self, client, tiny_campaign):
        test = tiny_campaign.test_for("S7")
        client.localize(test.features, model="knn@prod")
        client.localize(test.features, model="knn@prod")
        metrics = client.metrics()
        endpoint = metrics["gateway"]["endpoints"]["knn@prod"]
        assert endpoint["requests"] == 2
        assert endpoint["fingerprints"] == 2 * test.features.shape[0]
        assert endpoint["latency_ms"]["p50"] is not None
        batching = metrics["batching"]
        assert batching["enabled"] is True
        assert batching["endpoints"]["knn@prod"]["requests"] == 2
        assert metrics["gateway"]["loaded"] == ["knn@v1"]


class TestKeepAlive:
    def test_client_reuses_one_connection(self, client, tiny_campaign):
        features = tiny_campaign.test_for("S7").features
        for _ in range(5):
            client.localize(features[:1], model="knn")
        client.health()
        client.metrics()
        assert client.connections_opened == 1


class TestUnbatchedMode:
    def test_direct_mode_is_also_bit_identical(self, published_store, tiny_campaign):
        server = create_server(published_store, port=0, batching=False)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            client = ServiceClient(f"http://{host}:{port}")
            test = tiny_campaign.test_for("BLU")
            direct = published_store.resolve("knn").localize(test.features)
            via_http = client.localize(test.features, model="knn")
            np.testing.assert_array_equal(via_http.labels, direct.labels)
            assert client.health()["batching"] is False
        finally:
            server.shutdown()
            server.app.close()
            server.server_close()
