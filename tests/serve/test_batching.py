"""Tests for the :class:`repro.serve.MicroBatcher` micro-batching executor."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.api import LocalizationService
from repro.serve import MicroBatcher


@pytest.fixture()
def service(tiny_campaign) -> LocalizationService:
    return LocalizationService("KNN", params={"k": 3}).fit(tiny_campaign.train)


class TestBitIdentity:
    def test_single_fingerprint_requests_match_direct_batch(self, service, tiny_campaign):
        test = tiny_campaign.test_for("S7")
        direct = service.localize(test.features)
        with MicroBatcher(service.localize, max_batch=4, max_wait_ms=2.0) as batcher:
            futures = [batcher.submit(row) for row in test.features]
            results = [future.result(timeout=10) for future in futures]
        np.testing.assert_array_equal(
            np.concatenate([r.labels for r in results]), direct.labels
        )
        np.testing.assert_array_equal(
            np.concatenate([r.coordinates for r in results]), direct.coordinates
        )
        np.testing.assert_array_equal(
            np.concatenate([r.error_estimate for r in results]), direct.error_estimate
        )
        np.testing.assert_array_equal(
            np.concatenate([r.probabilities for r in results]), direct.probabilities
        )

    def test_multi_row_requests_keep_their_slices(self, service, tiny_campaign):
        test = tiny_campaign.test_for("BLU")
        with MicroBatcher(service.localize, max_batch=64, max_wait_ms=2.0) as batcher:
            first = batcher.submit(test.features[:4])
            second = batcher.submit(test.features[4:7])
            a, b = first.result(timeout=10), second.result(timeout=10)
        assert len(a) == 4 and len(b) == 3
        direct = service.localize(test.features[:7])
        np.testing.assert_array_equal(np.concatenate([a.labels, b.labels]), direct.labels)

    def test_concurrent_callers(self, service, tiny_campaign):
        test = tiny_campaign.test_for("S7")
        direct = service.localize(test.features)
        results = [None] * test.features.shape[0]
        with MicroBatcher(service.localize, max_batch=8, max_wait_ms=5.0) as batcher:
            def worker(index: int) -> None:
                results[index] = batcher.localize(test.features[index])

            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(test.features.shape[0])
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10)
        for index, result in enumerate(results):
            assert result is not None
            assert result.labels[0] == direct.labels[index]


class TestFlushPolicy:
    def test_max_batch_triggers_immediate_flush(self, service, tiny_campaign):
        test = tiny_campaign.test_for("S7")
        # A generous max_wait: flushes must come from the size trigger.
        with MicroBatcher(service.localize, max_batch=4, max_wait_ms=60_000) as batcher:
            futures = [batcher.submit(row) for row in test.features[:8]]
            for future in futures:
                future.result(timeout=10)
            assert batcher.stats.batches >= 2
            assert batcher.stats.requests == 8
            assert max(batcher.stats.batch_sizes) <= 4

    def test_max_wait_flushes_partial_batch(self, service, tiny_campaign):
        test = tiny_campaign.test_for("S7")
        with MicroBatcher(service.localize, max_batch=1_000, max_wait_ms=20.0) as batcher:
            start = time.perf_counter()
            result = batcher.localize(test.features[0])
            elapsed = time.perf_counter() - start
        assert result.labels.shape == (1,)
        assert elapsed < 10.0  # flushed by the wait timer, not the size trigger

    def test_oversized_request_is_not_split(self, service, tiny_campaign):
        test = tiny_campaign.test_for("S7")
        with MicroBatcher(service.localize, max_batch=2, max_wait_ms=2.0) as batcher:
            result = batcher.localize(test.features)
        assert len(result) == test.features.shape[0]

    def test_stats_document(self, service, tiny_campaign):
        test = tiny_campaign.test_for("S7")
        with MicroBatcher(service.localize, max_batch=4, max_wait_ms=2.0) as batcher:
            for row in test.features[:4]:
                batcher.localize(row)
            stats = batcher.stats.as_dict()
        assert stats["requests"] == 4
        assert stats["fingerprints"] == 4
        assert stats["batches"] >= 1
        assert stats["mean_batch_size"] >= 1


class TestLifecycleAndErrors:
    def test_exception_propagates_to_all_callers(self):
        def failing(features):
            raise RuntimeError("model exploded")

        with MicroBatcher(failing, max_batch=8, max_wait_ms=2.0) as batcher:
            futures = [batcher.submit(np.zeros(4)) for _ in range(3)]
            for future in futures:
                with pytest.raises(RuntimeError, match="model exploded"):
                    future.result(timeout=10)

    def test_bad_request_neither_kills_flusher_nor_fails_batchmates(
        self, service, tiny_campaign
    ):
        """Regression: a mismatched fingerprint width co-batched with valid
        requests must fail only its own caller — the flusher survives and
        innocent batch-mates still get their results."""
        test = tiny_campaign.test_for("S7")
        with MicroBatcher(service.localize, max_batch=8, max_wait_ms=20.0) as batcher:
            good = batcher.submit(test.features[0])
            bad = batcher.submit(np.zeros(3))  # wrong AP count
            also_good = batcher.submit(test.features[1])
            assert good.result(timeout=10).labels.shape == (1,)
            with pytest.raises(ValueError, match="APs|concatenat"):
                bad.result(timeout=10)
            assert also_good.result(timeout=10).labels.shape == (1,)
            # The flusher is still alive and serving.
            later = batcher.localize(test.features[2])
            assert later.labels.shape == (1,)

    def test_cancelled_future_neither_kills_flusher_nor_starves_batchmates(
        self, service, tiny_campaign
    ):
        """Regression: delivering into a cancelled future raised
        InvalidStateError and killed the flusher thread for good."""
        test = tiny_campaign.test_for("S7")
        release = threading.Event()

        def gated_localize(features):
            release.wait(10)
            return service.localize(features)

        with MicroBatcher(gated_localize, max_batch=8, max_wait_ms=1.0) as batcher:
            first = batcher.submit(test.features[0])
            time.sleep(0.05)  # flusher is now blocked inside gated_localize
            doomed = batcher.submit(test.features[1])
            survivor = batcher.submit(test.features[2])
            assert doomed.cancel()  # still queued behind the blocked flush
            release.set()
            assert first.result(timeout=10).labels.shape == (1,)
            assert survivor.result(timeout=10).labels.shape == (1,)
            # Flusher is still alive and the endpoint still serves.
            assert batcher.localize(test.features[0]).labels.shape == (1,)

    def test_submit_after_close_raises(self, service):
        batcher = MicroBatcher(service.localize, max_batch=4, max_wait_ms=1.0)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(np.zeros(4))

    def test_close_drains_queue(self, service, tiny_campaign):
        test = tiny_campaign.test_for("S7")
        batcher = MicroBatcher(service.localize, max_batch=1_000, max_wait_ms=60_000)
        futures = [batcher.submit(row) for row in test.features[:3]]
        batcher.close(timeout=10)
        for future in futures:
            assert future.result(timeout=1) is not None

    def test_invalid_knobs_rejected(self, service):
        with pytest.raises(ValueError):
            MicroBatcher(service.localize, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(service.localize, max_wait_ms=-1.0)
