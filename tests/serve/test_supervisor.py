"""Tests for the SO_REUSEPORT multi-process serving supervisor."""

from __future__ import annotations

import socket
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.api import LocalizationService
from repro.serve import ModelStore, ServiceClient
from repro.serve.aio.supervisor import ServeSupervisor


def _reuseport_supported() -> bool:
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    try:
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
            probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        return True
    except OSError:
        return False


pytestmark = pytest.mark.skipif(
    not _reuseport_supported(), reason="SO_REUSEPORT not supported on this platform"
)


@pytest.fixture()
def published_store(tiny_campaign, tmp_path) -> ModelStore:
    store = ModelStore(tmp_path / "store")
    service = LocalizationService("KNN", params={"k": 3}).fit(tiny_campaign.train)
    store.publish(service, "knn", tags=("prod",))
    return store


@pytest.fixture()
def supervisor(published_store):
    with ServeSupervisor(
        str(published_store.root),
        port=0,
        workers=2,
        routes={"b1/knn": "knn@prod"},
    ) as supervisor:
        supervisor.wait_until_ready(timeout=120.0)
        yield supervisor


class TestServeSupervisor:
    def test_workers_share_the_port_and_serve_identically(
        self, supervisor, published_store, tiny_campaign
    ):
        features = tiny_campaign.test_for("S7").features
        direct = published_store.resolve("knn@prod").localize(features)
        workers_seen = set()
        # Fresh connection per request: the kernel balances accepts across
        # the SO_REUSEPORT listeners, so both workers eventually answer.
        deadline = time.monotonic() + 120.0
        while len(workers_seen) < 2 and time.monotonic() < deadline:
            with ServiceClient(f"http://127.0.0.1:{supervisor.port}") as client:
                result = client.localize(features, model="b1/knn")
                assert result.labels.tobytes() == np.asarray(direct.labels).tobytes()
                workers_seen.add(client.health()["worker"])
        assert workers_seen == {0, 1}
        assert supervisor.alive_workers() == 2

    def test_dead_worker_is_respawned_within_budget(
        self, supervisor, tiny_campaign
    ):
        features = tiny_campaign.test_for("S7").features
        supervisor._processes[0].terminate()
        supervisor._processes[0].join(timeout=30.0)
        assert supervisor.poll() >= 1  # respawn happens inside poll()
        assert supervisor.restarts == 1
        supervisor.wait_until_ready(timeout=120.0)
        assert supervisor.alive_workers() == 2
        with ServiceClient(f"http://127.0.0.1:{supervisor.port}") as client:
            assert client.localize(features, model="b1/knn").labels.shape == (
                features.shape[0],
            )

    def test_restart_budget_is_per_slot(self, published_store):
        supervisor = ServeSupervisor(
            str(published_store.root), port=0, workers=1, max_restarts=0
        )
        supervisor.start()
        try:
            supervisor.wait_until_ready(timeout=120.0)
            supervisor._processes[0].terminate()
            supervisor._processes[0].join(timeout=30.0)
            assert supervisor.poll() == 0  # budget exhausted: no respawn
            assert supervisor.restarts == 0
        finally:
            supervisor.stop()

    def test_workers_validated(self, published_store):
        with pytest.raises(ValueError):
            ServeSupervisor(str(published_store.root), workers=0)

    def test_sigterm_reaps_the_worker_fleet(self, published_store):
        # An orphaned SO_REUSEPORT fleet would keep the port bound and
        # silently split traffic with the next `repro serve`; SIGTERM on
        # the CLI supervisor must take the workers down with it.
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--store", str(published_store.root),
                "--workers", "2", "--port", str(port),
                "--route", "b1/knn=knn@prod",
            ],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                try:
                    with ServiceClient(f"http://127.0.0.1:{port}") as client:
                        client.health()
                    break
                except OSError:
                    time.sleep(0.2)
            else:
                pytest.fail("supervised server never came up")
            process.terminate()  # SIGTERM, not SIGKILL: graceful path
            process.wait(timeout=30.0)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                try:
                    with socket.create_connection(("127.0.0.1", port), timeout=1.0):
                        pass
                except OSError:
                    return  # nothing listening: the fleet died with the parent
                time.sleep(0.2)
            pytest.fail("workers still accepting after the parent's SIGTERM")
        finally:
            if process.poll() is None:
                process.kill()
