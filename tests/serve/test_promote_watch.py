"""Zero-downtime hot promote: manifest watching under live traffic.

Satellite of the asyncio serving tier: ``repro store promote`` must atomically
swap what an endpoint serves — no dropped requests, no torn responses, and a
byte-identical rollback — while the server keeps running.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.api import LocalizationService
from repro.serve import Gateway, ModelStore, ServiceClient
from repro.serve.aio.server import AioServerThread


@pytest.fixture()
def store(tiny_campaign, tmp_path) -> ModelStore:
    store = ModelStore(tmp_path / "store")
    service = LocalizationService("KNN", params={"k": 3}).fit(tiny_campaign.train)
    store.publish(service, "knn", tags=("prod",))
    return store


class TestGatewayPinning:
    def test_tag_flip_promotes_without_restart(self, store, tiny_campaign):
        gateway = Gateway(store, watch_interval_s=0.0)
        features = tiny_campaign.test_for("S7").features
        v1_labels = gateway.localize("knn@prod", features).labels
        assert gateway.resolved_version("knn@prod") == "knn@v1"
        assert gateway.promotions == 0

        v2_service = LocalizationService("KNN", params={"k": 1}).fit(tiny_campaign.train)
        store.publish(v2_service, "knn")
        store.promote("knn@v2", "prod")

        v2_labels = gateway.localize("knn@prod", features).labels
        assert gateway.resolved_version("knn@prod") == "knn@v2"
        assert gateway.promotions == 1
        np.testing.assert_array_equal(
            v2_labels, store.resolve("knn@v2").localize(features).labels
        )

        # Rollback restores byte-identical v1 predictions.
        store.promote("knn@v1", "prod")
        rolled_back = gateway.localize("knn@prod", features).labels
        assert gateway.resolved_version("knn@prod") == "knn@v1"
        assert rolled_back.tobytes() == np.asarray(v1_labels).tobytes()

    def test_immutable_refs_never_repin(self, store, tiny_campaign):
        gateway = Gateway(store, watch_interval_s=0.0)
        features = tiny_campaign.test_for("S7").features
        gateway.localize("knn@v1", features)
        store.publish(
            LocalizationService("KNN", params={"k": 1}).fit(tiny_campaign.train), "knn"
        )
        store.promote("knn@v2", "prod")
        gateway.localize("knn@v1", features)
        assert gateway.resolved_version("knn@v1") == "knn@v1"
        assert gateway.promotions == 0

    def test_bare_names_track_latest(self, store, tiny_campaign):
        gateway = Gateway(store, watch_interval_s=0.0)
        features = tiny_campaign.test_for("S7").features
        gateway.localize("knn", features)
        assert gateway.resolved_version("knn") == "knn@v1"
        store.publish(
            LocalizationService("KNN", params={"k": 1}).fit(tiny_campaign.train), "knn"
        )
        gateway.localize("knn", features)
        assert gateway.resolved_version("knn") == "knn@v2"

    def test_stats_expose_resolved_pins(self, store, tiny_campaign):
        gateway = Gateway(store)
        gateway.localize("knn@prod", tiny_campaign.test_for("S7").features)
        stats = gateway.stats()
        assert stats["resolved"] == {"knn@prod": "knn@v1"}
        assert stats["promotions"] == 0


class TestPromoteUnderLoad:
    def test_flip_is_atomic_and_exactly_once(self, store, tiny_campaign):
        features = tiny_campaign.test_for("S7").features
        v1_direct = store.resolve("knn@v1").localize(features)
        v2_service = LocalizationService("KNN", params={"k": 1}).fit(tiny_campaign.train)
        expected = {"knn@v1": np.asarray(v1_direct.labels).tobytes()}

        observations = []
        errors = []
        promoted = threading.Event()
        served_after_promote = threading.Event()
        stop = threading.Event()

        def load_loop(base_url: str) -> None:
            with ServiceClient(base_url) as client:
                while not stop.is_set():
                    try:
                        document = client.localize_document(features, model="knn@prod")
                    except Exception as error:  # any failure fails the test
                        errors.append(error)
                        return
                    ref = document["ref"]
                    labels = np.asarray(document["labels"], dtype=np.int64)
                    observations.append((ref, labels.tobytes()))
                    if promoted.is_set() and ref == "knn@v2":
                        served_after_promote.set()

        # watch_interval_s=0: the gateway stats the manifest on every request,
        # so a promote is visible on the very next response.
        with AioServerThread(store, watch_interval_s=0.0) as server:
            worker = threading.Thread(target=load_loop, args=(server.base_url,))
            worker.start()
            try:
                while len(observations) < 10 and worker.is_alive():
                    time.sleep(0.01)  # let v1 traffic accumulate
                version = store.publish(v2_service, "knn")
                expected[version.ref] = np.asarray(
                    store.resolve(version.ref).localize(features).labels
                ).tobytes()
                store.promote(version.ref, "prod")
                promoted.set()
                assert served_after_promote.wait(timeout=60.0)
                stop.set()
            finally:
                stop.set()
                worker.join(timeout=60.0)
            metrics = ServiceClient(server.base_url).metrics()

        assert not errors, f"requests failed across the promote: {errors!r}"
        refs = [ref for ref, _ in observations]
        assert set(refs) == {"knn@v1", "knn@v2"}
        # Exactly one flip: v1..v1 v2..v2, never interleaved back.
        flips = sum(1 for a, b in zip(refs, refs[1:]) if a != b)
        assert flips == 1
        assert refs[0] == "knn@v1" and refs[-1] == "knn@v2"
        # No torn responses: every body is byte-identical to its version.
        for ref, labels_bytes in observations:
            assert labels_bytes == expected[ref]
        assert metrics["gateway"]["promotions"] == 1
        assert metrics["gateway"]["resolved"]["knn@prod"] == "knn@v2"

    def test_rollback_is_byte_identical(self, store, tiny_campaign):
        features = tiny_campaign.test_for("S7").features
        with AioServerThread(store, watch_interval_s=0.0) as server:
            with ServiceClient(server.base_url) as client:
                before = client.localize_document(features, model="knn@prod")
                store.publish(
                    LocalizationService("KNN", params={"k": 1}).fit(tiny_campaign.train),
                    "knn",
                )
                store.promote("knn@v2", "prod")
                during = client.localize_document(features, model="knn@prod")
                store.promote("knn@v1", "prod")
                after = client.localize_document(features, model="knn@prod")
        assert before["ref"] == "knn@v1"
        assert during["ref"] == "knn@v2"
        assert after["ref"] == "knn@v1"
        assert after["labels"] == before["labels"]
        assert after["coordinates"] == before["coordinates"]
