"""Serving-side inference guard: gateway counters, 403 enforcement, provenance."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.api import LocalizationService
from repro.attacks import FGSMAttack, ThreatModel
from repro.defenses import DefenseSpec, FingerprintDetectorDefense, GuardRejectedError
from repro.serve import Gateway, ModelStore, ServiceClient, create_server


def _guarded_service(tiny_campaign, action: str) -> LocalizationService:
    service = LocalizationService("KNN", params={"k": 3}).fit(tiny_campaign.train)
    service.attach_guard(
        DefenseSpec.create("detector", params={"action": action}),
        dataset=tiny_campaign.train,
    )
    return service


@pytest.fixture(scope="module")
def adversarial_batch(tiny_campaign, trained_dnn) -> np.ndarray:
    """Strongly perturbed fingerprints (ε = 0.5, ø = 100 %) for the detector."""
    test = tiny_campaign.test_for("S7")
    attack = FGSMAttack(ThreatModel(epsilon=0.5, phi_percent=100.0, seed=3))
    return attack.perturb(test.features, test.labels, trained_dnn)


class TestServiceGuard:
    def test_monitor_mode_flags_without_rejecting(self, tiny_campaign, adversarial_batch):
        service = _guarded_service(tiny_campaign, "monitor")
        clean = service.localize(tiny_campaign.test_for("S7").features)
        attacked = service.localize(adversarial_batch)
        assert clean.guard_flags is not None and attacked.guard_flags is not None
        assert attacked.guard_flags.sum() > clean.guard_flags.sum()
        assert attacked.guard_flags.sum() >= len(adversarial_batch) // 2

    def test_reject_mode_raises_with_flagged_rows(self, tiny_campaign, adversarial_batch):
        service = _guarded_service(tiny_campaign, "reject")
        with pytest.raises(GuardRejectedError) as excinfo:
            service.localize(adversarial_batch)
        assert excinfo.value.defense == "detector"
        assert len(excinfo.value.flagged_indices) >= 1

    def test_guard_does_not_change_predictions(self, tiny_campaign):
        guarded = _guarded_service(tiny_campaign, "monitor")
        plain = LocalizationService("KNN", params={"k": 3}).fit(tiny_campaign.train)
        features = tiny_campaign.test_for("S7").features
        np.testing.assert_array_equal(
            guarded.localize(features).labels, plain.localize(features).labels
        )

    def test_guard_survives_save_load(self, tiny_campaign, adversarial_batch, tmp_path):
        service = _guarded_service(tiny_campaign, "monitor")
        restored = LocalizationService.load(service.save(tmp_path / "guarded.npz"))
        assert isinstance(restored.guard, FingerprintDetectorDefense)
        np.testing.assert_array_equal(
            restored.localize(adversarial_batch).guard_flags,
            service.localize(adversarial_batch).guard_flags,
        )

    def test_reject_action_survives_save_load(
        self, tiny_campaign, adversarial_batch, tmp_path
    ):
        """A rejecting guard must not silently degrade to monitor mode."""
        service = _guarded_service(tiny_campaign, "reject")
        restored = LocalizationService.load(service.save(tmp_path / "strict.npz"))
        assert restored.guard.rejects
        assert restored.guard.action == "reject"
        with pytest.raises(GuardRejectedError):
            restored.localize(adversarial_batch)

    def test_fitted_instance_attach_keeps_config(self, tiny_campaign):
        """attach_guard(Defense instance) records the full constructor config."""
        detector = FingerprintDetectorDefense(
            target_fpr=0.05, margin=2.0, action="reject"
        ).fit_guard(tiny_campaign.train)
        service = LocalizationService("KNN", params={"k": 3}).fit(tiny_campaign.train)
        service.attach_guard(detector)
        rebuilt = LocalizationService.from_state_arrays(service.state_arrays()).guard
        assert rebuilt.target_fpr == 0.05
        assert rebuilt.margin == 2.0
        assert rebuilt.action == "reject"

    def test_empty_batch_passes_guard(self, tiny_campaign):
        """Empty batches stay valid on guarded services (they were before)."""
        service = _guarded_service(tiny_campaign, "reject")
        result = service.localize(np.empty((0, tiny_campaign.train.num_aps)))
        assert len(result) == 0
        assert result.guard_flags is not None and result.guard_flags.shape == (0,)
        # The (0, 0)-shaped batch the HTTP layer produces for "[]" too.
        assert len(service.localize(np.empty((0, 0)))) == 0


class TestGatewayGuardMetrics:
    def test_flagged_counter_accumulates(self, tiny_campaign, adversarial_batch, tmp_path):
        store = ModelStore(tmp_path / "store")
        store.publish(_guarded_service(tiny_campaign, "monitor"), "knn", tags=("prod",))
        gateway = Gateway(store)
        gateway.localize("knn@prod", adversarial_batch)
        stats = gateway.stats()["endpoints"]["knn@prod"]
        assert stats["guard"]["flagged"] >= 1
        assert stats["guard"]["rejected"] == 0
        assert stats["requests"] == 1

    def test_rejected_counter_and_reraise(self, tiny_campaign, adversarial_batch, tmp_path):
        store = ModelStore(tmp_path / "store")
        store.publish(_guarded_service(tiny_campaign, "reject"), "knn", tags=("prod",))
        gateway = Gateway(store)
        with pytest.raises(GuardRejectedError):
            gateway.localize("knn@prod", adversarial_batch)
        stats = gateway.stats()["endpoints"]["knn@prod"]
        assert stats["guard"]["rejected"] == 1
        assert stats["guard"]["flagged"] >= 1
        # Guard rejections are their own counter, not generic errors.
        assert stats["errors"] == 0


class TestStoreProvenance:
    def test_manifest_records_defense(self, tiny_campaign, tmp_path):
        store = ModelStore(tmp_path / "store")
        version = store.publish(_guarded_service(tiny_campaign, "monitor"), "knn")
        assert version.defense == "detector"
        assert store.lookup("knn").defense == "detector"
        assert store.inspect("knn")["defense"] == "detector"
        undefended = LocalizationService("KNN", params={"k": 3}).fit(tiny_campaign.train)
        plain = store.publish(undefended, "knn-plain")
        assert plain.defense == "none"

    def test_resolved_service_keeps_guard(self, tiny_campaign, adversarial_batch, tmp_path):
        store = ModelStore(tmp_path / "store")
        store.publish(_guarded_service(tiny_campaign, "monitor"), "knn", tags=("prod",))
        restored = store.resolve("knn@prod")
        assert restored.defense_name == "detector"
        result = restored.localize(adversarial_batch)
        assert result.guard_flags is not None and result.guard_flags.sum() >= 1


class TestHTTPGuard:
    @pytest.fixture()
    def guarded_server(self, tiny_campaign, tmp_path):
        store = ModelStore(tmp_path / "store")
        store.publish(_guarded_service(tiny_campaign, "monitor"), "knn", tags=("prod",))
        store.publish(_guarded_service(tiny_campaign, "reject"), "knn-strict", tags=("prod",))
        server = create_server(store, port=0, max_batch=8, max_wait_ms=2.0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield server
        finally:
            server.shutdown()
            server.app.close()
            server.server_close()

    def _post(self, server, payload):
        host, port = server.server_address[:2]
        request = urllib.request.Request(
            f"http://{host}:{port}/v1/localize",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        return urllib.request.urlopen(request, timeout=10)

    def test_monitor_mode_reports_flagged_indices(
        self, guarded_server, adversarial_batch
    ):
        with self._post(
            guarded_server,
            {"model": "knn", "fingerprints": adversarial_batch.tolist()},
        ) as response:
            document = json.loads(response.read().decode("utf-8"))
        assert document["count"] == len(adversarial_batch)
        assert len(document["guard_flagged"]) >= 1

    def test_reject_mode_is_403_with_flagged_rows(
        self, guarded_server, adversarial_batch
    ):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(
                guarded_server,
                {"model": "knn-strict", "fingerprints": adversarial_batch.tolist()},
            )
        assert excinfo.value.code == 403
        document = json.loads(excinfo.value.read().decode("utf-8"))
        assert document["defense"] == "detector"
        assert len(document["flagged"]) >= 1

    def test_metrics_surface_guard_counters(self, guarded_server, adversarial_batch):
        host, port = guarded_server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        client.localize(adversarial_batch, model="knn")
        metrics = client.metrics()
        guard = metrics["gateway"]["endpoints"]["knn"]["guard"]
        assert guard["flagged"] >= 1 and guard["rejected"] == 0

    def test_empty_batch_is_200_on_guarded_endpoint(self, guarded_server):
        with self._post(
            guarded_server, {"model": "knn-strict", "fingerprints": []}
        ) as response:
            document = json.loads(response.read().decode("utf-8"))
        assert document["count"] == 0

    def test_batched_rejection_counted_once(self, guarded_server, adversarial_batch):
        """The degraded per-request retry, not the batch probe, owns the stats."""
        expected_flags = int(
            guarded_server.app.gateway.store.resolve("knn-strict")
            .guard.guard(adversarial_batch)
            .num_flagged
        )
        assert expected_flags >= 1
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(
                guarded_server,
                {"model": "knn-strict", "fingerprints": adversarial_batch.tolist()},
            )
        assert excinfo.value.code == 403
        stats = guarded_server.app.gateway.stats()["endpoints"]["knn-strict"]
        # Exactly once each — the failed batch probe must not pre-count them.
        assert stats["guard"]["rejected"] == 1
        assert stats["guard"]["flagged"] == expected_flags
