"""Tests for the wire codecs shared by both serving front ends."""

from __future__ import annotations

import json
import struct

import numpy as np
import pytest

from repro.serve.aio.protocol import (
    CONTENT_JSON,
    CONTENT_MSGPACK,
    CONTENT_NDARRAY,
    NDARRAY_MAGIC,
    ProtocolError,
    UnsupportedContentType,
    decode_body,
    encode_body,
    msgpack_available,
    normalize_content_type,
    pack_arrays,
    parse_localize_payload,
    supported_content_types,
    unpack_arrays,
)


class TestNdarrayFraming:
    def test_roundtrip_mixed_dtypes_and_shapes(self):
        arrays = {
            "features": np.arange(12, dtype=np.float64).reshape(3, 4),
            "labels": np.array([7, 1, 2], dtype=np.int64),
            "empty": np.empty((0, 5), dtype=np.float64),
            "scalarish": np.array(3.5),
        }
        meta, back = unpack_arrays(pack_arrays({"model": "knn"}, arrays))
        assert meta == {"model": "knn"}
        assert set(back) == set(arrays)
        for name, array in arrays.items():
            assert back[name].dtype == array.dtype
            np.testing.assert_array_equal(back[name], array)

    def test_float_payloads_are_bit_exact(self):
        tricky = np.array([[np.pi, np.e, 1e-300, -0.0]])
        _, back = unpack_arrays(pack_arrays({}, {"x": tricky}))
        assert back["x"].tobytes() == tricky.tobytes()

    def test_rejects_non_numeric_dtype_on_pack(self):
        with pytest.raises(ProtocolError, match="non-numeric"):
            pack_arrays({}, {"bad": np.array(["a", "b"])})

    def test_rejects_bad_magic(self):
        with pytest.raises(ProtocolError, match="magic"):
            unpack_arrays(b"NOPE" + b"\x00" * 16)

    def test_rejects_truncated_header_and_payload(self):
        body = pack_arrays({}, {"x": np.ones((2, 2))})
        with pytest.raises(ProtocolError, match="truncated"):
            unpack_arrays(body[:10])
        with pytest.raises(ProtocolError, match="truncated"):
            unpack_arrays(body[:-8])

    def test_rejects_trailing_bytes(self):
        body = pack_arrays({}, {"x": np.ones(3)})
        with pytest.raises(ProtocolError, match="trailing"):
            unpack_arrays(body + b"\x00")

    def _forged(self, descriptor, payload=b""):
        header = json.dumps({"meta": {}, "arrays": [descriptor]}).encode()
        return NDARRAY_MAGIC + struct.pack("<I", len(header)) + header + payload

    def test_rejects_forbidden_dtype_descriptor(self):
        body = self._forged({"name": "x", "dtype": "<O8", "shape": [1]}, b"\x00" * 8)
        with pytest.raises(ProtocolError, match="forbidden dtype"):
            unpack_arrays(body)

    def test_rejects_negative_shape(self):
        body = self._forged({"name": "x", "dtype": "<f8", "shape": [-1, 8]})
        with pytest.raises(ProtocolError, match="negative shape"):
            unpack_arrays(body)

    def test_rejects_oversized_declared_array(self):
        # Declares 2**40 floats but ships none: must reject, never allocate.
        body = self._forged({"name": "x", "dtype": "<f8", "shape": [2**40]})
        with pytest.raises(ProtocolError, match="truncated"):
            unpack_arrays(body)


class TestContentNegotiation:
    def test_missing_header_is_json(self):
        assert normalize_content_type(None) == CONTENT_JSON
        assert normalize_content_type("") == CONTENT_JSON

    def test_parameters_are_stripped(self):
        assert normalize_content_type("application/json; charset=utf-8") == CONTENT_JSON

    def test_ndarray_and_msgpack_alias(self):
        assert normalize_content_type(CONTENT_NDARRAY) == CONTENT_NDARRAY
        if msgpack_available():
            assert normalize_content_type("application/x-msgpack") == CONTENT_MSGPACK
        else:
            with pytest.raises(UnsupportedContentType):
                normalize_content_type(CONTENT_MSGPACK)

    def test_unknown_type_rejected_with_supported_list(self):
        with pytest.raises(UnsupportedContentType) as excinfo:
            normalize_content_type("text/csv")
        assert CONTENT_JSON in str(excinfo.value)

    def test_supported_content_types_reflect_msgpack(self):
        types = supported_content_types()
        assert CONTENT_JSON in types and CONTENT_NDARRAY in types
        assert (CONTENT_MSGPACK in types) == msgpack_available()


class TestBodyCodecs:
    PAYLOAD = {"model": "knn@prod", "fingerprints": [[-40.0, -60.0], [-45.0, -61.0]]}

    def test_json_roundtrip(self):
        body = encode_body(self.PAYLOAD, CONTENT_JSON)
        assert decode_body(body, CONTENT_JSON)["model"] == "knn@prod"

    def test_ndarray_roundtrip_preserves_payload_semantics(self):
        payload = dict(self.PAYLOAD, fingerprints=np.asarray(self.PAYLOAD["fingerprints"]))
        decoded = decode_body(encode_body(payload, CONTENT_NDARRAY), CONTENT_NDARRAY)
        endpoint, features, proba = parse_localize_payload(decoded)
        assert endpoint == "knn@prod"
        np.testing.assert_array_equal(features, self.PAYLOAD["fingerprints"])
        assert proba is False

    def test_ndarray_labels_stay_integers(self):
        document = {"model": "knn", "ref": "knn@v1", "labels": [3, 1, 4]}
        decoded = decode_body(encode_body(document, CONTENT_NDARRAY), CONTENT_NDARRAY)
        # Arrays come back zero-copy; labels must stay integral, not float64.
        assert np.asarray(decoded["labels"]).dtype == np.int64
        np.testing.assert_array_equal(decoded["labels"], [3, 1, 4])

    def test_ndarray_null_error_estimates_survive(self):
        # JSON null (no probability model) rides the binary wire as NaN —
        # the direct service's native representation.
        document = {"model": "knn", "ref": "knn@v1", "error_estimate": [1.5, None]}
        decoded = decode_body(encode_body(document, CONTENT_NDARRAY), CONTENT_NDARRAY)
        assert decoded["error_estimate"][0] == 1.5
        assert np.isnan(decoded["error_estimate"][1])

    @pytest.mark.skipif(not msgpack_available(), reason="msgpack not installed")
    def test_msgpack_roundtrip(self):
        body = encode_body(self.PAYLOAD, CONTENT_MSGPACK)
        decoded = decode_body(body, CONTENT_MSGPACK)
        endpoint, features, _ = parse_localize_payload(decoded)
        assert endpoint == "knn@prod"
        np.testing.assert_array_equal(features, self.PAYLOAD["fingerprints"])

    def test_msgpack_gated_when_absent(self):
        if msgpack_available():
            pytest.skip("msgpack installed in this environment")
        with pytest.raises(UnsupportedContentType):
            encode_body(self.PAYLOAD, CONTENT_MSGPACK)


class TestParseLocalizePayload:
    def test_flat_list_is_batch_of_one(self):
        _, features, _ = parse_localize_payload(
            {"model": "knn", "fingerprints": [1.0, 2.0]}
        )
        assert features.shape == (1, 2)

    def test_empty_list_is_empty_batch(self):
        _, features, _ = parse_localize_payload({"model": "knn", "fingerprints": []})
        assert features.shape == (0, 0)

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"model": "knn"},
            {"fingerprints": [[0.0]]},
            {"model": "knn", "fingerprints": [[[1.0]]]},
        ],
    )
    def test_invalid_payloads_raise_value_error(self, payload):
        with pytest.raises(ValueError):
            parse_localize_payload(payload)
