"""Tests for shadow/canary routing: grammar, hashing, policies, promote gate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.registry import ROUTER_POLICIES, available_router_policies, make_router_policy
from repro.serve.aio.routing import (
    RouteSpec,
    RoutingDecision,
    ShadowStats,
    canary_fraction,
    canary_ok,
    decide_route,
    parse_route,
)


class TestParseRoute:
    def test_plain_form_unchanged(self):
        endpoint, spec = parse_route("building-1/knn=knn@prod")
        assert endpoint == "building-1/knn"
        assert spec == RouteSpec(ref="knn@prod")
        assert not spec.has_shadow

    def test_shadow_defaults_fraction(self):
        _, spec = parse_route("b1/knn=knn@prod,shadow=knn@v2")
        assert spec.shadow == "knn@v2"
        assert spec.fraction == pytest.approx(0.1)
        assert spec.policy == "mirror"
        assert spec.has_shadow

    def test_full_grammar(self):
        endpoint, spec = parse_route(
            "b1/knn=knn@prod,shadow=knn@v2,fraction=0.25,policy=split,seed=7"
        )
        assert endpoint == "b1/knn"
        assert spec.ref == "knn@prod"
        assert spec.fraction == pytest.approx(0.25)
        assert spec.policy == "split"
        assert spec.seed == 7

    @pytest.mark.parametrize(
        "text",
        [
            "no-equals-sign",
            "=knn@prod",
            "ep=",
            "ep=knn,fraction=0.5",  # fraction without a shadow ref
            "ep=knn,shadow=knn@v2,fraction=1.5",
            "ep=knn,shadow=knn@v2,fraction=0",
            "ep=knn,shadow=knn@v2,policy=teleport",
            "ep=knn,shadow=knn@v2,seed=abc",
            "ep=knn,teleport=yes",
        ],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            parse_route(text)

    def test_route_spec_validates_directly(self):
        with pytest.raises(ValueError):
            RouteSpec(ref="")
        with pytest.raises(ValueError, match="never receive traffic"):
            RouteSpec(ref="knn", shadow="knn@v2", fraction=0.0)

    def test_as_dict_hides_shadow_keys_for_plain_routes(self):
        assert RouteSpec(ref="knn@prod").as_dict() == {"ref": "knn@prod"}
        shadowed = RouteSpec(ref="a", shadow="b", fraction=0.5).as_dict()
        assert shadowed["shadow"] == "b"
        assert shadowed["policy"] == "mirror"


class TestCanaryFraction:
    def test_deterministic(self):
        features = np.arange(12, dtype=np.float64).reshape(3, 4)
        assert canary_fraction(0, features) == canary_fraction(0, features)
        assert canary_fraction(0, features) == canary_fraction(0, features.copy())

    def test_in_unit_interval_and_seed_sensitive(self):
        features = np.ones((2, 4))
        values = {canary_fraction(seed, features) for seed in range(8)}
        assert all(0.0 <= value < 1.0 for value in values)
        assert len(values) == 8  # different seeds sample different subsets

    def test_roughly_uniform_over_requests(self):
        rng = np.random.default_rng(0)
        values = [canary_fraction(0, rng.normal(size=(1, 6))) for _ in range(400)]
        below = sum(value < 0.25 for value in values)
        assert 0.15 < below / len(values) < 0.35


class TestPolicies:
    def test_registry_lists_policies(self):
        names = available_router_policies()
        assert "mirror" in names and "split" in names
        assert ROUTER_POLICIES.resolve("shadow-mirror") == "mirror"

    def test_mirror_serves_primary_and_mirrors_fraction(self):
        policy = make_router_policy("mirror")
        hit = policy.decide(0.05, 0.1)
        miss = policy.decide(0.95, 0.1)
        assert hit == RoutingDecision(serve_shadow=False, mirror_shadow=True)
        assert miss == RoutingDecision(serve_shadow=False, mirror_shadow=False)

    def test_split_serves_shadow_for_fraction(self):
        policy = make_router_policy("split")
        assert policy.decide(0.05, 0.1).serve_shadow is True
        assert policy.decide(0.95, 0.1).serve_shadow is False

    def test_decide_route_plain_spec_never_shadows(self):
        decision = decide_route(RouteSpec(ref="knn"), np.ones((1, 4)))
        assert decision == RoutingDecision()

    def test_decide_route_is_deterministic_per_request(self):
        spec = RouteSpec(ref="knn", shadow="knn@v2", fraction=0.5, seed=3)
        features = np.full((1, 4), 2.5)
        first = decide_route(spec, features)
        assert all(decide_route(spec, features) == first for _ in range(5))


class TestCanaryOk:
    def _document(self, **overrides):
        spec = RouteSpec(ref="knn@prod", shadow="knn@v2", fraction=0.5)
        stats = ShadowStats("b1/knn", spec, window=64)
        for _ in range(60):
            stats.record_request(RoutingDecision(mirror_shadow=True))
            stats.record_arm("primary", 0.010, 4, 0)
            stats.record_arm("shadow", 0.011, 4, 0)
            stats.record_comparison(0, 4)
        document = stats.as_dict()
        document.update(overrides)
        return document

    def test_healthy_canary_passes(self):
        ok, reasons = canary_ok(self._document())
        assert ok, reasons

    def test_too_few_requests(self):
        ok, reasons = canary_ok(self._document(mirrored=3, shadow_served=0))
        assert not ok and any("shadow-scored" in reason for reason in reasons)

    def test_shadow_errors_block(self):
        ok, reasons = canary_ok(self._document(shadow_errors=2))
        assert not ok and any("error" in reason for reason in reasons)

    def test_flagged_regression_blocks(self):
        document = self._document()
        document["shadow"] = dict(document["shadow"], flagged_rate=0.2)
        document["primary"] = dict(document["primary"], flagged_rate=0.0)
        ok, reasons = canary_ok(document)
        assert not ok and any("flagged" in reason for reason in reasons)

    def test_latency_regression_blocks(self):
        document = self._document()
        document["primary"] = dict(document["primary"], latency_ms={"p99": 10.0})
        document["shadow"] = dict(document["shadow"], latency_ms={"p99": 100.0})
        ok, reasons = canary_ok(document)
        assert not ok and any("p99" in reason for reason in reasons)

    def test_prediction_disagreement_is_not_gated(self):
        ok, _ = canary_ok(self._document(label_mismatches=100, mismatch_rate=0.4))
        assert ok  # a retrained candidate is expected to predict differently


class TestShadowStats:
    def test_bounded_windows(self):
        spec = RouteSpec(ref="a", shadow="b", fraction=0.5)
        stats = ShadowStats("ep", spec, window=8)
        for _ in range(50):
            stats.record_arm("primary", 0.01, 1, 0)
        assert len(stats.primary.latencies) == 8
        assert stats.primary.requests == 50
