"""Tests for the multi-tenant :class:`repro.serve.Gateway`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import LocalizationService
from repro.serve import Gateway, ModelStore, StoreError
from repro.serve.gateway import percentile


@pytest.fixture()
def store(tiny_campaign, tmp_path) -> ModelStore:
    store = ModelStore(tmp_path / "store")
    for k in (1, 3, 5):
        service = LocalizationService("KNN", params={"k": k}).fit(tiny_campaign.train)
        store.publish(service, f"knn{k}", tags=("prod",))
    return store


class TestRouting:
    def test_localize_matches_direct_service(self, store, tiny_campaign):
        gateway = Gateway(store)
        test = tiny_campaign.test_for("S7")
        via_gateway = gateway.localize("knn3@prod", test.features)
        direct = store.resolve("knn3@prod").localize(test.features)
        np.testing.assert_array_equal(via_gateway.labels, direct.labels)
        np.testing.assert_array_equal(via_gateway.coordinates, direct.coordinates)

    def test_explicit_routes(self, store, tiny_campaign):
        gateway = Gateway(store, routes={"building-1/knn": "knn3@prod"})
        test = tiny_campaign.test_for("S7")
        routed = gateway.localize("building-1/knn", test.features)
        direct = gateway.localize("knn3@prod", test.features)
        np.testing.assert_array_equal(routed.labels, direct.labels)
        assert gateway.resolve_endpoint("building-1/knn") == "knn3@prod"
        assert gateway.resolve_endpoint("knn1") == "knn1"
        assert "building-1/knn" in gateway.endpoints()
        assert "knn1" in gateway.endpoints()

    def test_unknown_endpoint_raises_without_leaking_stats(self, store):
        """Unknown names must not grow /metrics: no EndpointStats entry."""
        gateway = Gateway(store)
        for bogus in ("ghost@prod", "x1", "x2"):
            with pytest.raises(StoreError):
                gateway.localize(bogus, np.zeros((1, 4)))
        assert gateway.stats()["endpoints"] == {}

    def test_request_failure_on_valid_endpoint_counts_error(self, store):
        gateway = Gateway(store)
        with pytest.raises(ValueError, match="APs"):
            gateway.localize("knn3@prod", np.zeros((1, 3)))  # wrong width
        assert gateway.stats()["endpoints"]["knn3@prod"]["errors"] == 1


class TestLazyLoadingAndEviction:
    def test_lazy_load_on_first_request(self, store, tiny_campaign):
        gateway = Gateway(store)
        assert gateway.loaded_refs() == []
        gateway.localize("knn1", tiny_campaign.test_for("S7").features)
        # Loaded services are keyed by the *pinned* immutable version ref.
        assert gateway.loaded_refs() == ["knn1@v1"]
        assert gateway.loads == 1
        # Second request reuses the loaded service.
        gateway.localize("knn1", tiny_campaign.test_for("S7").features)
        assert gateway.loads == 1

    def test_lru_eviction(self, store, tiny_campaign):
        gateway = Gateway(store, max_loaded=2)
        features = tiny_campaign.test_for("S7").features
        gateway.localize("knn1", features)
        gateway.localize("knn3", features)
        gateway.localize("knn1", features)  # refresh knn1 -> knn3 becomes LRU
        gateway.localize("knn5", features)  # evicts knn3
        assert set(gateway.loaded_refs()) == {"knn1@v1", "knn5@v1"}
        assert gateway.evictions == 1
        # Evicted endpoints transparently reload.
        gateway.localize("knn3", features)
        assert gateway.loads == 4

    def test_max_loaded_validated(self, store):
        with pytest.raises(ValueError):
            Gateway(store, max_loaded=0)


class TestStats:
    def test_request_counters_and_latency(self, store, tiny_campaign):
        gateway = Gateway(store)
        features = tiny_campaign.test_for("S7").features
        for _ in range(3):
            gateway.localize("knn3@prod", features)
        stats = gateway.stats()
        endpoint = stats["endpoints"]["knn3@prod"]
        assert endpoint["requests"] == 3
        assert endpoint["fingerprints"] == 3 * features.shape[0]
        assert endpoint["errors"] == 0
        assert endpoint["latency_ms"]["p50"] is not None
        assert endpoint["latency_ms"]["p99"] >= endpoint["latency_ms"]["p50"]
        assert stats["store"]["models"] == ["knn1", "knn3", "knn5"]

    def test_latency_window_is_bounded(self, store, tiny_campaign):
        """Regression: a long-lived gateway must not accumulate one latency
        sample per request forever — the percentile window is bounded."""
        gateway = Gateway(store, stats_window=4)
        features = tiny_campaign.test_for("S7").features
        for _ in range(10):
            gateway.localize("knn3@prod", features)
        endpoint_stats = gateway._stats["knn3@prod"]
        assert endpoint_stats.latencies.maxlen == 4
        assert len(endpoint_stats.latencies) == 4
        # Counters still see every request; only the window is bounded.
        assert gateway.stats()["endpoints"]["knn3@prod"]["requests"] == 10

    def test_stats_window_validated(self, store):
        with pytest.raises(ValueError):
            Gateway(store, stats_window=0)

    def test_percentile_helper(self):
        assert percentile([], 50) is None
        assert percentile([5.0], 99) == 5.0
        samples = [float(v) for v in range(1, 101)]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 50) == pytest.approx(50.0, abs=1.0)
        assert percentile(samples, 100) == 100.0
