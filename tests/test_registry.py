"""Tests for the plugin-style component registries (``repro.registry``)."""

from __future__ import annotations

import pytest

from repro.attacks import ThreatModel
from repro.attacks.fgsm import FGSMAttack
from repro.attacks.mitm import SignalManipulationAttack, SignalSpoofingAttack
from repro.baselines import BASELINE_REGISTRY, KNNLocalizer, make_baseline
from repro.core import CALLOC
from repro.registry import (
    ATTACKS,
    LOCALIZERS,
    Registry,
    RegistryError,
    available_attacks,
    available_localizers,
    make_attack,
    make_localizer,
    register_localizer,
)


class TestGlobalRegistries:
    def test_every_paper_model_is_registered(self):
        names = available_localizers()
        assert "CALLOC" in names
        for baseline in (
            "KNN", "NaiveBayes", "GPC", "DNN", "CNN",
            "AdvLoc", "ANVIL", "SANGRIA", "WiDeep",
        ):
            assert baseline in names

    def test_every_attack_is_registered(self):
        names = available_attacks()
        assert set(names) >= {"FGSM", "PGD", "MIM", "MITM-manipulation", "MITM-spoofing"}

    def test_tags_partition_localizers(self):
        assert available_localizers(tag="framework") == ["CALLOC"]
        assert "CALLOC" not in available_localizers(tag="baseline")
        assert "KNN" in available_localizers(tag="baseline")

    def test_make_localizer_passes_kwargs(self):
        model = make_localizer("KNN", k=3)
        assert isinstance(model, KNNLocalizer)
        assert model.k == 3

    def test_lookup_is_case_insensitive(self):
        assert isinstance(make_localizer("calloc", epochs_per_lesson=1), CALLOC)
        assert isinstance(make_attack("fgsm", ThreatModel()), FGSMAttack)

    def test_attack_aliases(self):
        attack = make_attack("spoofing", ThreatModel())
        assert isinstance(attack, SignalSpoofingAttack)
        attack = make_attack("manipulation", ThreatModel())
        assert isinstance(attack, SignalManipulationAttack)

    def test_unknown_name_raises_keyerror_with_suggestion(self):
        with pytest.raises(KeyError) as excinfo:
            make_localizer("KNNN")
        message = str(excinfo.value)
        assert "unknown localizer 'KNNN'" in message
        assert "KNN" in message
        with pytest.raises(RegistryError):
            make_attack("CW", ThreatModel())

    def test_entries_carry_docstring_summaries(self):
        entry = LOCALIZERS.entry("CALLOC")
        assert entry.name == "CALLOC"
        assert entry.summary  # first docstring line
        assert all(e.summary for e in ATTACKS.entries())

    def test_containment_and_iteration(self):
        assert "KNN" in LOCALIZERS
        assert "knn" in LOCALIZERS
        assert "ResNet" not in LOCALIZERS
        assert list(LOCALIZERS) == available_localizers()
        assert len(LOCALIZERS) == len(available_localizers())


class TestRegistryMechanics:
    """Mutation tests run on a private Registry to keep the globals clean."""

    def test_decorator_registration_and_create(self):
        registry = Registry("widget")

        @registry.register("Alpha", tags=("x",), aliases=("a",))
        class Alpha:
            """An alpha widget."""

            def __init__(self, value=0):
                self.value = value

        assert registry.names() == ["Alpha"]
        assert registry.create("alpha", value=3).value == 3
        assert registry.create("a").value == 0
        assert registry.entry("Alpha").summary == "An alpha widget."

    def test_duplicate_registration_conflicts(self):
        registry = Registry("widget")
        registry.register("Alpha", lambda: "first")
        # Re-registering the same factory is a harmless no-op.
        factory = registry.get("Alpha")
        registry.register("Alpha", factory)
        with pytest.raises(RegistryError):
            registry.register("Alpha", lambda: "second")
        registry.register("Alpha", lambda: "second", override=True)
        assert registry.create("Alpha") == "second"

    def test_as_dict_filters_by_tag(self):
        registry = Registry("widget")
        registry.register("A", lambda: "a", tags=("one",))
        registry.register("B", lambda: "b", tags=("two",))
        assert set(registry.as_dict()) == {"A", "B"}
        assert set(registry.as_dict(tag="one")) == {"A"}


class TestLegacyShims:
    def test_baseline_registry_dict_still_matches(self):
        assert set(BASELINE_REGISTRY) == {
            "KNN", "NaiveBayes", "GPC", "DNN", "CNN",
            "AdvLoc", "ANVIL", "SANGRIA", "WiDeep",
        }
        for name, factory in BASELINE_REGISTRY.items():
            assert LOCALIZERS.get(name) is factory

    def test_make_baseline_delegates_to_registry(self):
        model = make_baseline("KNN", k=7)
        assert isinstance(model, KNNLocalizer)
        assert model.k == 7
        with pytest.raises(KeyError):
            make_baseline("ResNet")

    def test_register_localizer_decorator_is_global(self):
        sentinel = object()
        try:
            register_localizer("___test-model___", lambda: sentinel)
            assert make_localizer("___test-model___") is sentinel
        finally:
            LOCALIZERS._entries.pop("___test-model___", None)
            LOCALIZERS._lookup.pop("___test-model___", None)
