"""Unit and integration tests for the CALLOC trainer and public localizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import FGSMAttack, ThreatModel, attack_dataset
from repro.core import CALLOC, CALLOCModel, CALLOCTrainer, Curriculum, TrainerConfig
from repro.nn import save_module, load_module


@pytest.fixture()
def tiny_training_set(tiny_campaign):
    return tiny_campaign.train.features, tiny_campaign.train.labels


def build_model(tiny_campaign, rng_seed=0):
    train = tiny_campaign.train
    num_classes = train.num_classes
    reference = np.array(
        [train.features[train.labels == c].mean(axis=0) for c in range(num_classes)]
    )
    return CALLOCModel(
        num_aps=train.num_aps,
        num_classes=num_classes,
        reference_features=reference,
        reference_positions=train.rp_positions,
        embed_dim=16,
        attention_dim=8,
        rng=np.random.default_rng(rng_seed),
    )


class TestTrainer:
    def test_training_report_structure(self, tiny_campaign, tiny_training_set):
        features, labels = tiny_training_set
        model = build_model(tiny_campaign)
        trainer = CALLOCTrainer(
            model,
            curriculum=Curriculum(num_lessons=3),
            config=TrainerConfig(epochs_per_lesson=2, seed=0),
        )
        report = trainer.train(features, labels)
        assert len(report.lessons) == 3
        assert report.total_epochs >= 3
        assert len(report.loss_curve()) == report.total_epochs
        assert "lesson" in report.summary()

    def test_loss_decreases_from_first_to_best(self, tiny_campaign, tiny_training_set):
        features, labels = tiny_training_set
        model = build_model(tiny_campaign)
        trainer = CALLOCTrainer(
            model,
            curriculum=Curriculum(num_lessons=2),
            config=TrainerConfig(epochs_per_lesson=8, seed=0),
        )
        report = trainer.train(features, labels)
        curve = report.loss_curve()
        assert min(curve) < curve[0]

    def test_adaptive_backoffs_are_recorded(self, tiny_campaign, tiny_training_set):
        features, labels = tiny_training_set
        model = build_model(tiny_campaign)
        trainer = CALLOCTrainer(
            model,
            curriculum=Curriculum(num_lessons=4),
            config=TrainerConfig(epochs_per_lesson=4, seed=0, adaptive=True),
        )
        report = trainer.train(features, labels)
        assert report.total_backoffs >= 0  # structural check: field exists and is consistent
        assert report.total_backoffs == sum(r.backoffs for r in report.lessons)

    def test_static_mode_runs_full_epoch_budget(self, tiny_campaign, tiny_training_set):
        features, labels = tiny_training_set
        model = build_model(tiny_campaign)
        trainer = CALLOCTrainer(
            model,
            curriculum=Curriculum(num_lessons=3),
            config=TrainerConfig(epochs_per_lesson=3, adaptive=False, seed=0),
        )
        report = trainer.train(features, labels)
        assert report.total_epochs == 9
        assert report.total_backoffs == 0

    def test_model_is_left_in_eval_mode(self, tiny_campaign, tiny_training_set):
        features, labels = tiny_training_set
        model = build_model(tiny_campaign)
        CALLOCTrainer(
            model,
            curriculum=Curriculum(num_lessons=2),
            config=TrainerConfig(epochs_per_lesson=2, seed=0),
        ).train(features, labels)
        assert not model.training


class TestCALLOCLocalizer:
    def test_predicts_classes_in_range(self, trained_calloc, tiny_campaign):
        predictions = trained_calloc.predict_dataset(tiny_campaign.test_all_devices())
        assert predictions.min() >= 0
        assert predictions.max() < tiny_campaign.num_classes

    def test_reasonable_clean_accuracy(self, trained_calloc, tiny_campaign):
        error = trained_calloc.mean_error(tiny_campaign.test_all_devices())
        # The tiny building spans ~20 m; random guessing would give ~8 m.
        assert error < 5.0

    def test_predict_proba_is_distribution(self, trained_calloc, tiny_campaign):
        proba = trained_calloc.predict_proba(tiny_campaign.test_for("S7").features)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)
        assert (proba >= 0).all()

    def test_loss_gradient_shape(self, trained_calloc, tiny_campaign):
        test = tiny_campaign.test_for("OP3")
        gradient = trained_calloc.loss_gradient(test.features, test.labels)
        assert gradient.shape == test.features.shape
        assert np.isfinite(gradient).all()

    def test_unfitted_model_raises(self):
        model = CALLOC()
        with pytest.raises(RuntimeError):
            model.predict(np.zeros((1, 4)))
        with pytest.raises(RuntimeError):
            model.parameter_report()

    def test_invalid_reference_mode_rejected(self):
        with pytest.raises(ValueError):
            CALLOC(reference_mode="nearest")

    def test_parameter_report_after_fit(self, trained_calloc):
        report = trained_calloc.parameter_report()
        assert report["total"] > 0

    def test_training_report_available(self, trained_calloc):
        assert trained_calloc.training_report is not None
        assert trained_calloc.training_report.total_epochs > 0

    def test_no_curriculum_trains_on_clean_lessons_only(self, tiny_campaign):
        model = CALLOC(
            embed_dim=16, attention_dim=8, num_lessons=3, epochs_per_lesson=2,
            use_curriculum=False, seed=0,
        )
        model.fit(tiny_campaign.train)
        assert all(record.lesson.is_baseline for record in model.training_report.lessons)

    def test_curriculum_lessons_escalate_phi(self, trained_calloc):
        phis = [record.lesson.phi_percent for record in trained_calloc.training_report.lessons]
        assert phis[0] == 0.0
        assert phis[-1] == pytest.approx(100.0)

    def test_attack_on_calloc_keeps_error_bounded(self, trained_calloc, tiny_campaign):
        """Sanity version of Fig. 4: FGSM at moderate strength should not push
        CALLOC's error beyond half of the building diagonal."""
        test = tiny_campaign.test_all_devices()
        threat = ThreatModel(epsilon=0.3, phi_percent=50.0, seed=7)
        attacked = attack_dataset(test, FGSMAttack(threat), trained_calloc)
        assert trained_calloc.mean_error(attacked) < 12.0

    def test_all_reference_mode_trains(self, tiny_campaign):
        model = CALLOC(
            embed_dim=16, attention_dim=8, num_lessons=2, epochs_per_lesson=2,
            reference_mode="all", seed=0,
        )
        model.fit(tiny_campaign.train)
        assert model.model.reference_features.shape[0] == tiny_campaign.train.num_samples

    def test_model_weights_round_trip(self, trained_calloc, tiny_campaign, tmp_path):
        path = save_module(trained_calloc.model, tmp_path / "calloc.npz")
        source = trained_calloc.model
        clone = CALLOCModel(
            num_aps=source.num_aps,
            num_classes=source.num_classes,
            reference_features=source.reference_features,
            reference_positions=source.reference_positions,
            reference_labels=source.reference_labels,
            embed_dim=source.embed_dim,
            attention_dim=source.attention_dim,
            rng=np.random.default_rng(99),
        )
        load_module(clone, path)
        clone.eval()
        test = tiny_campaign.test_for("S7")
        from repro.nn import Tensor

        np.testing.assert_allclose(
            clone(Tensor(test.features)).data.argmax(axis=1),
            trained_calloc.predict(test.features),
        )
