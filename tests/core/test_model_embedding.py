"""Unit tests for the CALLOC model and its hyperspace embeddings."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CALLOCModel, CurriculumEmbedding, OriginalEmbedding
from repro.nn import CrossEntropyLoss, Tensor


@pytest.fixture()
def small_model(rng) -> CALLOCModel:
    num_aps, num_classes = 12, 5
    reference = rng.random((num_classes, num_aps))
    positions = np.column_stack([np.arange(num_classes, dtype=float), np.zeros(num_classes)])
    return CALLOCModel(
        num_aps=num_aps,
        num_classes=num_classes,
        reference_features=reference,
        reference_positions=positions,
        embed_dim=16,
        attention_dim=8,
        rng=rng,
    )


class TestEmbeddings:
    def test_curriculum_embedding_shape(self, rng):
        embedding = CurriculumEmbedding(num_aps=10, embed_dim=6, rng=rng)
        out = embedding(Tensor(rng.random((4, 10))))
        assert out.shape == (4, 6)

    def test_reconstruction_loss_is_scalar_and_differentiable(self, rng):
        embedding = CurriculumEmbedding(num_aps=10, embed_dim=6, rng=rng)
        loss = embedding.reconstruction_loss(Tensor(rng.random((4, 10))))
        assert loss.size == 1
        loss.backward()
        assert embedding.projection.weight.grad is not None

    def test_original_embedding_augmentation_only_in_training(self, rng):
        embedding = OriginalEmbedding(num_aps=10, embed_dim=6, rng=rng)
        data = Tensor(rng.random((4, 10)))
        embedding.eval()
        np.testing.assert_allclose(embedding(data).data, embedding(data).data)
        embedding.train()
        assert not np.allclose(embedding(data).data, embedding(data).data)

    def test_paper_augmentation_defaults(self):
        embedding = OriginalEmbedding(num_aps=4)
        assert embedding.dropout.rate == pytest.approx(0.2)
        assert embedding.noise.std == pytest.approx(0.32)


class TestModelConstruction:
    def test_forward_shape(self, small_model, rng):
        small_model.eval()
        logits = small_model(Tensor(rng.random((7, 12))))
        assert logits.shape == (7, 5)

    def test_rejects_bad_reference_shapes(self, rng):
        with pytest.raises(ValueError):
            CALLOCModel(10, 3, rng.random((3, 9)), rng.random((3, 2)))
        with pytest.raises(ValueError):
            CALLOCModel(10, 3, rng.random((3, 10)), rng.random((2, 2)))

    def test_requires_labels_for_non_per_rp_database(self, rng):
        with pytest.raises(ValueError):
            CALLOCModel(10, 3, rng.random((6, 10)), rng.random((6, 2)))

    def test_accepts_full_database_with_labels(self, rng):
        model = CALLOCModel(
            10,
            3,
            rng.random((6, 10)),
            rng.random((6, 2)),
            reference_labels=np.array([0, 0, 1, 1, 2, 2]),
            embed_dim=8,
            attention_dim=4,
        )
        model.eval()
        assert model(Tensor(rng.random((2, 10)))).shape == (2, 3)

    def test_update_reference(self, small_model, rng):
        new_reference = rng.random((5, 12))
        new_positions = rng.random((5, 2)) * 10
        small_model.update_reference(new_reference, new_positions)
        np.testing.assert_allclose(small_model.reference_features, new_reference)

    def test_update_reference_rejects_mismatch(self, small_model, rng):
        with pytest.raises(ValueError):
            small_model.update_reference(rng.random((5, 3)), rng.random((5, 2)))

    def test_parameter_report_sums_to_total(self, small_model):
        report = small_model.parameter_report()
        components = (
            report["embedding_layers"]
            + report["embedding_decoders"]
            + report["attention_layer"]
            + report["fully_connected"]
        )
        assert components == report["total"]

    def test_embedding_layer_budget_matches_paper_formula(self):
        """With 165 APs and 128-d hyperspaces the embedding budget is 42,496."""
        rng = np.random.default_rng(0)
        model = CALLOCModel(
            165, 61, rng.random((61, 165)), rng.random((61, 2)), rng=rng
        )
        assert model.parameter_report()["embedding_layers"] == 42496


class TestModelBehaviour:
    def test_attention_weights_shape(self, small_model, rng):
        small_model.eval()
        weights = small_model.attention_weights(Tensor(rng.random((3, 12))))
        assert weights.shape == (3, 5)
        np.testing.assert_allclose(weights.sum(axis=1), np.ones(3), atol=1e-9)

    def test_clean_reference_query_prefers_its_own_entry(self, small_model):
        """A query identical to a database fingerprint should attend to it most."""
        small_model.eval()
        query = Tensor(small_model.reference_features[2:3])
        weights = small_model.attention_weights(query)
        assert weights[0].argmax() == 2

    def test_kernel_votes_bounded_per_ap(self, small_model, rng):
        small_model.eval()
        votes = small_model.kernel_votes(Tensor(rng.random((3, 12)))).data
        # Each AP contributes at most softplus(0) = log(2) per entry, so the
        # total vote is bounded by num_aps * log(2) / sqrt(num_aps).
        bound = 12 * np.log(2.0) / np.sqrt(12)
        assert votes.max() <= bound + 1e-9
        assert votes.min() >= 0.0

    def test_input_gradient_available_for_attacks(self, small_model, rng):
        small_model.eval()
        inputs = Tensor(rng.random((4, 12)), requires_grad=True)
        loss = CrossEntropyLoss()(small_model(inputs), np.array([0, 1, 2, 3]))
        loss.backward()
        assert inputs.grad.shape == (4, 12)

    def test_embedding_reconstruction_loss_positive(self, small_model, rng):
        small_model.train()
        loss = small_model.embedding_reconstruction_loss(Tensor(rng.random((4, 12))))
        assert loss.item() > 0

    def test_eval_mode_is_deterministic(self, small_model, rng):
        small_model.eval()
        data = Tensor(rng.random((3, 12)))
        np.testing.assert_allclose(small_model(data).data, small_model(data).data)

    def test_train_mode_is_stochastic_due_to_augmentation(self, small_model, rng):
        small_model.train()
        data = Tensor(rng.random((3, 12)))
        assert not np.allclose(small_model(data).data, small_model(data).data)
