"""Unit tests for curriculum construction and lesson materialisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Curriculum, Lesson, LessonBuilder


class ConstantGradientModel:
    """Gradient provider with a fixed positive gradient (for lesson crafting)."""

    def loss_gradient(self, features, labels):
        return np.ones_like(features)


class TestLesson:
    def test_describe_mentions_phi_and_epsilon(self):
        lesson = Lesson(index=2, phi_percent=10.0, epsilon=0.1, original_fraction=0.8)
        text = lesson.describe()
        assert "phi=10%" in text and "eps=0.1" in text

    def test_with_phi_clips_to_valid_range(self):
        lesson = Lesson(index=3, phi_percent=5.0, epsilon=0.1, original_fraction=0.5)
        assert lesson.with_phi(-3.0).phi_percent == 0.0
        assert lesson.with_phi(150.0).phi_percent == 100.0

    def test_baseline_detection(self):
        assert Lesson(1, 0.0, 0.1, 1.0).is_baseline
        assert not Lesson(2, 10.0, 0.1, 0.8).is_baseline


class TestCurriculum:
    def test_default_has_ten_lessons(self):
        assert len(Curriculum()) == 10

    def test_first_lesson_is_clean_baseline(self):
        first = Curriculum()[0]
        assert first.phi_percent == 0.0
        assert first.original_fraction == 1.0

    def test_second_lesson_matches_paper(self):
        # "the second lesson contains ø = 10 (10% attacked APs) with ϵ = 0.1"
        second = Curriculum()[1]
        assert second.phi_percent == pytest.approx(10.0)
        assert second.epsilon == pytest.approx(0.1)

    def test_last_lesson_reaches_full_phi(self):
        # "culminates in the toughest scenario at lesson 10, with ø = 100"
        assert Curriculum()[-1].phi_percent == pytest.approx(100.0)

    def test_phi_is_monotonically_increasing(self):
        phis = [lesson.phi_percent for lesson in Curriculum()]
        assert phis == sorted(phis)

    def test_original_fraction_is_non_increasing(self):
        fractions = [lesson.original_fraction for lesson in Curriculum()]
        assert all(a >= b for a, b in zip(fractions, fractions[1:]))

    def test_epsilon_is_fixed_across_lessons(self):
        epsilons = {lesson.epsilon for lesson in Curriculum(epsilon=0.1)}
        assert epsilons == {0.1}

    def test_custom_lesson_count(self):
        assert len(Curriculum(num_lessons=5)) == 5

    def test_rejects_too_few_lessons(self):
        with pytest.raises(ValueError):
            Curriculum(num_lessons=1)

    def test_rejects_invalid_phi_range(self):
        with pytest.raises(ValueError):
            Curriculum(start_phi=0.0)
        with pytest.raises(ValueError):
            Curriculum(start_phi=50.0, max_phi=20.0)

    def test_describe_lists_every_lesson(self):
        assert len(Curriculum().describe().splitlines()) == 10

    def test_iteration_and_indexing_agree(self):
        curriculum = Curriculum()
        assert list(curriculum)[3].index == curriculum[3].index


class TestLessonBuilder:
    @pytest.fixture()
    def clean_data(self, rng):
        return rng.uniform(0.2, 0.8, size=(20, 10)), rng.integers(0, 4, size=20)

    def test_baseline_lesson_returns_clean_copy(self, clean_data):
        features, labels = clean_data
        lesson = Lesson(1, 0.0, 0.1, 1.0)
        built_features, built_labels = LessonBuilder().build(
            lesson, features, labels, ConstantGradientModel()
        )
        np.testing.assert_allclose(built_features, features)
        np.testing.assert_array_equal(built_labels, labels)
        assert built_features is not features

    def test_adversarial_lesson_perturbs_a_fraction(self, clean_data):
        features, labels = clean_data
        lesson = Lesson(5, 50.0, 0.1, 0.5)
        built_features, _ = LessonBuilder(seed=1).build(
            lesson, features, labels, ConstantGradientModel()
        )
        changed_rows = (np.abs(built_features - features) > 1e-12).any(axis=1)
        assert 0 < changed_rows.sum() <= 11  # about half the rows

    def test_perturbation_respects_lesson_epsilon(self, clean_data):
        features, labels = clean_data
        lesson = Lesson(5, 100.0, 0.1, 0.0)
        built_features, _ = LessonBuilder(seed=1).build(
            lesson, features, labels, ConstantGradientModel()
        )
        assert np.abs(built_features - features).max() <= 0.1 + 1e-9

    def test_successive_realisations_differ(self, clean_data):
        features, labels = clean_data
        lesson = Lesson(4, 40.0, 0.1, 0.5)
        builder = LessonBuilder(seed=2)
        first, _ = builder.build(lesson, features, labels, ConstantGradientModel())
        second, _ = builder.build(lesson, features, labels, ConstantGradientModel())
        assert not np.allclose(first, second)

    def test_labels_are_never_modified(self, clean_data):
        features, labels = clean_data
        lesson = Lesson(9, 90.0, 0.1, 0.2)
        _, built_labels = LessonBuilder(seed=3).build(
            lesson, features, labels, ConstantGradientModel()
        )
        np.testing.assert_array_equal(built_labels, labels)
