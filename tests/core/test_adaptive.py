"""Unit tests for the adaptive curriculum controller (Sec. IV.D)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AdaptiveConfig, AdaptiveCurriculumController, Lesson, LessonAction


@pytest.fixture()
def lesson() -> Lesson:
    return Lesson(index=4, phi_percent=40.0, epsilon=0.1, original_fraction=0.6)


def weights(value: float) -> dict:
    return {"w": np.full(3, value)}


class TestObservation:
    def test_decreasing_loss_continues(self, lesson):
        controller = AdaptiveCurriculumController()
        controller.start_lesson(lesson)
        actions = [
            controller.observe(lesson, epoch, loss, weights(loss))
            for epoch, loss in enumerate([1.0, 0.9, 0.8])
        ]
        assert actions == [LessonAction.CONTINUE] * 3

    def test_divergence_triggers_backoff_after_patience(self, lesson):
        controller = AdaptiveCurriculumController(AdaptiveConfig(patience=2))
        controller.start_lesson(lesson)
        controller.observe(lesson, 0, 1.0, weights(1.0))
        assert controller.observe(lesson, 1, 1.2, weights(1.2)) is LessonAction.CONTINUE
        assert controller.observe(lesson, 2, 1.3, weights(1.3)) is LessonAction.BACKOFF

    def test_best_weights_snapshot_is_kept(self, lesson):
        controller = AdaptiveCurriculumController()
        controller.start_lesson(lesson)
        controller.observe(lesson, 0, 0.9, weights(0.9))
        controller.observe(lesson, 1, 1.5, weights(1.5))
        np.testing.assert_allclose(controller.best_weights["w"], np.full(3, 0.9))
        assert controller.best_loss == pytest.approx(0.9)

    def test_best_weights_are_copies(self, lesson):
        controller = AdaptiveCurriculumController()
        controller.start_lesson(lesson)
        snapshot = weights(0.5)
        controller.observe(lesson, 0, 0.5, snapshot)
        snapshot["w"][:] = 99.0
        np.testing.assert_allclose(controller.best_weights["w"], np.full(3, 0.5))

    def test_small_fluctuations_within_tolerance_do_not_count(self, lesson):
        controller = AdaptiveCurriculumController(
            AdaptiveConfig(patience=1, divergence_tolerance=0.5)
        )
        controller.start_lesson(lesson)
        controller.observe(lesson, 0, 1.0, weights(1.0))
        # 20% worse but within the 50% tolerance -> keep training.
        assert controller.observe(lesson, 1, 1.2, weights(1.2)) is LessonAction.CONTINUE

    def test_force_advance_after_max_backoffs(self, lesson):
        config = AdaptiveConfig(patience=1, max_backoffs_per_lesson=1)
        controller = AdaptiveCurriculumController(config)
        controller.start_lesson(lesson)
        controller.observe(lesson, 0, 1.0, weights(1.0))
        assert controller.observe(lesson, 1, 2.0, weights(2.0)) is LessonAction.BACKOFF
        controller.observe(lesson, 2, 0.5, weights(0.5))
        assert controller.observe(lesson, 3, 3.0, weights(3.0)) is LessonAction.ADVANCE

    def test_recovery_resets_increase_counter(self, lesson):
        controller = AdaptiveCurriculumController(AdaptiveConfig(patience=2))
        controller.start_lesson(lesson)
        controller.observe(lesson, 0, 1.0, weights(1.0))
        controller.observe(lesson, 1, 1.5, weights(1.5))   # one increase
        controller.observe(lesson, 2, 0.8, weights(0.8))   # recovery
        assert controller.observe(lesson, 3, 0.85, weights(0.85)) is LessonAction.CONTINUE


class TestBackoffAdjustment:
    def test_phi_reduced_by_two_percentage_points(self, lesson):
        controller = AdaptiveCurriculumController()
        adjusted = controller.adjusted_lesson(lesson)
        assert adjusted.phi_percent == pytest.approx(38.0)

    def test_phi_never_goes_negative(self):
        controller = AdaptiveCurriculumController()
        lesson = Lesson(index=2, phi_percent=1.0, epsilon=0.1, original_fraction=0.8)
        assert controller.adjusted_lesson(lesson).phi_percent == 0.0

    def test_custom_backoff_step(self, lesson):
        controller = AdaptiveCurriculumController(AdaptiveConfig(phi_backoff_step=10.0))
        assert controller.adjusted_lesson(lesson).phi_percent == pytest.approx(30.0)


class TestHistory:
    def test_history_records_every_observation(self, lesson):
        controller = AdaptiveCurriculumController()
        controller.start_lesson(lesson)
        for epoch, loss in enumerate([1.0, 0.9, 0.95]):
            controller.observe(lesson, epoch, loss, weights(loss))
        assert len(controller.history) == 3
        assert controller.loss_curve() == [1.0, 0.9, 0.95]

    def test_history_tracks_lesson_and_phi(self, lesson):
        controller = AdaptiveCurriculumController()
        controller.start_lesson(lesson)
        controller.observe(lesson, 0, 1.0, weights(1.0))
        entry = controller.history[0]
        assert entry["lesson"] == 4.0
        assert entry["phi"] == 40.0

    def test_start_lesson_resets_state(self, lesson):
        controller = AdaptiveCurriculumController()
        controller.start_lesson(lesson)
        controller.observe(lesson, 0, 0.4, weights(0.4))
        controller.start_lesson(lesson)
        assert controller.best_weights is None
        assert controller.backoffs_in_lesson == 0
