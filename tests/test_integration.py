"""End-to-end integration tests across the whole library.

These exercise the complete pipeline the paper describes: simulate a building
campaign, train CALLOC and baselines on the offline database, mount white-box
MITM attacks on the online fingerprints of heterogeneous devices, and compare
localization errors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import CALLOC, localization_errors
from repro.attacks import (
    FGSMAttack,
    MIMAttack,
    PGDAttack,
    SignalSpoofingAttack,
    ThreatModel,
    attack_dataset,
)
from repro.baselines import DNNLocalizer, KNNLocalizer, make_baseline
from repro.data import CampaignConfig, collect_campaign, save_dataset_csv, load_dataset_csv


class TestOfflineOnlinePipeline:
    def test_calloc_beats_random_guessing_on_every_device(self, trained_calloc, tiny_campaign):
        positions = tiny_campaign.train.rp_positions
        diameter = np.linalg.norm(positions.max(axis=0) - positions.min(axis=0))
        for device, test in tiny_campaign.test_by_device.items():
            assert trained_calloc.mean_error(test) < diameter / 2, device

    def test_calloc_and_dnn_agree_on_interface(self, trained_calloc, trained_dnn, tiny_campaign):
        test = tiny_campaign.test_for("LG")
        for model in (trained_calloc, trained_dnn):
            errors = model.evaluate(test)
            assert errors.shape == (test.num_samples,)
            assert (errors >= 0).all()

    def test_localization_errors_helper_consistency(self, trained_knn, tiny_campaign):
        test = tiny_campaign.test_for("HTC")
        predictions = trained_knn.predict_dataset(test)
        errors = localization_errors(predictions, test.labels, test.rp_positions)
        np.testing.assert_allclose(errors, trained_knn.evaluate(test))


class TestAttackResilienceShape:
    """Qualitative shape checks mirroring the paper's headline claims."""

    def test_white_box_fgsm_hurts_undefended_dnn_more_than_calloc(
        self, trained_calloc, trained_dnn, tiny_campaign
    ):
        test = tiny_campaign.test_all_devices()
        threat = ThreatModel(epsilon=0.4, phi_percent=75.0, seed=3)
        calloc_errors = []
        dnn_errors = []
        for seed in (3, 4, 5):
            threat = ThreatModel(epsilon=0.4, phi_percent=75.0, seed=seed)
            calloc_errors.append(
                trained_calloc.mean_error(
                    attack_dataset(test, FGSMAttack(threat), trained_calloc)
                )
            )
            dnn_errors.append(
                trained_dnn.mean_error(attack_dataset(test, FGSMAttack(threat), trained_dnn))
            )
        assert np.mean(calloc_errors) < np.mean(dnn_errors)

    def test_attack_strength_grows_with_phi_for_undefended_model(
        self, trained_dnn, tiny_campaign
    ):
        test = tiny_campaign.test_all_devices()
        errors = []
        for phi in (10.0, 100.0):
            per_seed = []
            for seed in (1, 2, 3):
                threat = ThreatModel(epsilon=0.3, phi_percent=phi, seed=seed)
                attacked = attack_dataset(test, FGSMAttack(threat), trained_dnn)
                per_seed.append(trained_dnn.mean_error(attacked))
            errors.append(np.mean(per_seed))
        assert errors[-1] > errors[0]

    def test_iterative_attacks_are_at_least_as_strong_as_clean(self, trained_dnn, tiny_campaign):
        test = tiny_campaign.test_all_devices()
        clean_error = trained_dnn.mean_error(test)
        threat = ThreatModel(epsilon=0.3, phi_percent=60.0, seed=2)
        for attack_cls in (PGDAttack, MIMAttack):
            attacked = attack_dataset(test, attack_cls(threat), trained_dnn)
            assert trained_dnn.mean_error(attacked) >= clean_error

    def test_spoofing_attack_runs_end_to_end(self, trained_dnn, tiny_campaign):
        test = tiny_campaign.test_for("BLU")
        threat = ThreatModel(epsilon=0.2, phi_percent=40.0, seed=6)
        spoof = SignalSpoofingAttack(threat, method="FGSM")
        attacked = attack_dataset(test, spoof, trained_dnn)
        assert attacked.features.min() >= 0.0 and attacked.features.max() <= 1.0


class TestDataInterchange:
    def test_campaign_csv_export_feeds_models(self, tiny_campaign, tmp_path):
        path = save_dataset_csv(tiny_campaign.train, tmp_path / "train.csv")
        reloaded = load_dataset_csv(path)
        model = KNNLocalizer(k=3).fit(reloaded)
        test = tiny_campaign.test_for("S7")
        assert model.mean_error(test) < 6.0

    def test_registry_models_run_on_same_campaign(self, tiny_campaign):
        for name, kwargs in (
            ("KNN", {}),
            ("NaiveBayes", {}),
            ("DNN", {"epochs": 8, "seed": 0}),
        ):
            model = make_baseline(name, **kwargs).fit(tiny_campaign.train)
            error = model.mean_error(tiny_campaign.test_for("OP3"))
            assert np.isfinite(error), name


class TestReproducibility:
    def test_calloc_training_is_deterministic_given_seed(self, tiny_campaign):
        def train():
            model = CALLOC(
                embed_dim=16, attention_dim=8, num_lessons=3, epochs_per_lesson=2, seed=7
            )
            model.fit(tiny_campaign.train)
            return model.predict(tiny_campaign.test_for("S7").features)

        np.testing.assert_array_equal(train(), train())

    def test_dnn_training_is_deterministic_given_seed(self, tiny_campaign):
        def train():
            return (
                DNNLocalizer(hidden_dims=(16,), epochs=8, seed=3)
                .fit(tiny_campaign.train)
                .predict(tiny_campaign.test_for("S7").features)
            )

        np.testing.assert_array_equal(train(), train())
