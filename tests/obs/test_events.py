"""Durability tests for the JSONL event log.

The contract (module docstring of :mod:`repro.obs.events`): every record is
one flushed whole-line append, sealed segments are never rewritten or lost,
and a reader always gets every intact record — a torn tail from a SIGKILL'd
writer is skipped, never propagated as an error.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.obs import events, trace
from repro.obs.events import EventLog, EventSink, read_events, segment_paths, tail


class TestRoundTrip:
    def test_append_read_roundtrip(self, tmp_path):
        with EventLog(tmp_path) as log:
            for index in range(10):
                log.append({"kind": "t", "index": index})
        records = list(read_events(tmp_path))
        assert [record["index"] for record in records] == list(range(10))

    def test_kind_filter(self, tmp_path):
        with EventLog(tmp_path) as log:
            log.append({"kind": "a"})
            log.append({"kind": "b"})
            log.append({"kind": "a"})
        assert len(list(read_events(tmp_path, kind="a"))) == 2

    def test_empty_dir_reads_empty(self, tmp_path):
        assert list(read_events(tmp_path / "nothing")) == []

    def test_odd_types_never_raise(self, tmp_path):
        import numpy as np

        with EventLog(tmp_path) as log:
            log.append({
                "kind": "odd",
                "npint": np.int64(3),
                "npfloat": np.float64(0.5),
                "array": np.arange(3),
                "opaque": object(),
            })
        (record,) = read_events(tmp_path)
        assert record["npint"] == 3
        assert record["array"] == [0, 1, 2]
        assert record["opaque"].startswith("<object object")


class TestRotation:
    def test_size_rotation_seals_and_keeps_everything(self, tmp_path):
        with EventLog(tmp_path, max_segment_bytes=200) as log:
            for index in range(50):
                log.append({"kind": "r", "index": index, "pad": "x" * 20})
        segments = segment_paths(tmp_path)
        assert len(segments) > 1
        records = list(read_events(tmp_path))
        assert [record["index"] for record in records] == list(range(50))

    def test_pid_reuse_continues_sequence(self, tmp_path):
        with EventLog(tmp_path) as log:
            log.append({"kind": "first"})
        with EventLog(tmp_path) as log:
            log.append({"kind": "second"})
        segments = segment_paths(tmp_path)
        assert len(segments) == 2  # a new segment, not an in-place append
        kinds = [record["kind"] for record in read_events(tmp_path)]
        assert kinds == ["first", "second"]


class TestTornTail:
    def test_torn_tail_is_skipped(self, tmp_path):
        with EventLog(tmp_path) as log:
            log.append({"kind": "whole", "index": 0})
            log.append({"kind": "whole", "index": 1})
        (segment,) = segment_paths(tmp_path)
        with open(segment, "ab") as stream:
            stream.write(b'{"kind": "torn", "ind')  # killed mid-append
        records = list(read_events(tmp_path))
        assert [record["index"] for record in records] == [0, 1]

    def test_writer_reopening_torn_segment_starts_clean(self, tmp_path):
        with EventLog(tmp_path) as log:
            log.append({"kind": "before"})
        (segment,) = segment_paths(tmp_path)
        with open(segment, "ab") as stream:
            stream.write(b'{"kind": "torn"')
        # A recycled-pid writer opens a *new* segment; force the torn one to
        # be reopened directly to exercise the newline repair.
        log = EventLog(tmp_path)
        log._seq = int(segment.stem.rsplit("-", 1)[-1])
        log._open_segment()
        log.append({"kind": "after"})
        log.close()
        kinds = [record["kind"] for record in read_events(tmp_path)]
        assert kinds == ["before", "after"]

    def test_tail_defers_partial_line_until_whole(self, tmp_path):
        log = EventLog(tmp_path)
        log.append({"kind": "a"})
        log.close()
        (segment,) = segment_paths(tmp_path)
        with open(segment, "ab") as stream:
            stream.write(b'{"kind": "b"')
            stream.flush()
            assert [r["kind"] for r in tail(tmp_path)] == ["a"]
            stream.write(b"}\n")
            stream.flush()
        kinds = [record["kind"] for record in tail(tmp_path)]
        assert kinds == ["a", "b"]

    def test_tail_follow_sees_new_segments(self, tmp_path):
        with EventLog(tmp_path, max_segment_bytes=80) as log:
            seen = []
            stream = tail(tmp_path, follow=True, poll_s=0.01,
                          stop=lambda: len(seen) >= 6)
            for index in range(6):
                log.append({"kind": "f", "index": index, "pad": "y" * 30})
            for record in stream:
                seen.append(record)
        assert [record["index"] for record in seen] == list(range(6))
        assert len(segment_paths(tmp_path)) > 1


class TestSinkSafety:
    def test_emit_without_sink_is_noop(self):
        events.emit("nobody", listening=True)  # must not raise

    def test_emit_respects_disabled_telemetry(self, tmp_path):
        events.configure_sink(tmp_path)
        trace.set_enabled(False)
        events.emit("silenced")
        trace.set_enabled(True)
        events.emit("heard")
        events.configure_sink(None)
        kinds = [record["kind"] for record in read_events(tmp_path)]
        assert kinds == ["heard"]

    def test_raising_sink_never_breaks_the_caller(self, tmp_path, monkeypatch):
        sink = events.configure_sink(tmp_path)

        def explode(record):
            raise OSError("disk on fire")

        monkeypatch.setattr(sink.log, "append", explode)
        events.emit("doomed")  # swallowed
        with trace.span("still.works"):
            pass  # emit_span is also swallowed
        events.configure_sink(None)

    def test_sink_envelope_has_ts_pid_kind(self, tmp_path):
        sink = EventSink(tmp_path)
        sink.emit("env", extra=1)
        sink.close()
        (record,) = read_events(tmp_path)
        assert record["kind"] == "env"
        assert record["pid"] == os.getpid()
        assert record["extra"] == 1
        assert isinstance(record["ts"], float)

    def test_flush_makes_prior_emits_readable(self, tmp_path):
        sink = EventSink(tmp_path, drain_interval_s=5.0)
        for index in range(50):
            sink.emit("pending", index=index)
        # The writer polls every 5s here, so without flush() nothing would
        # be on disk yet; flush must wake it and wait for the drain.
        assert sink.flush(timeout_s=10.0)
        indices = [record["index"] for record in read_events(tmp_path)]
        assert indices == list(range(50))
        sink.close()

    def test_flush_after_close_reports_drained(self, tmp_path):
        sink = EventSink(tmp_path)
        sink.emit("last", words=True)
        sink.close()
        assert sink.flush(timeout_s=1.0)  # queue already drained by close


class TestCrashSafety:
    def test_sigkilled_writer_loses_nothing_flushed(self, tmp_path):
        """A writer SIGKILL'd mid-stream leaves every appended line readable."""
        script = textwrap.dedent(
            """
            import os, signal, sys
            from repro.obs.events import EventLog
            log = EventLog(sys.argv[1], max_segment_bytes=500)
            for index in range(40):
                log.append({"kind": "doomed", "index": index, "pad": "z" * 20})
            os.kill(os.getpid(), signal.SIGKILL)  # no close(), no atexit
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
        process = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path)],
            env=env,
            timeout=60,
        )
        assert process.returncode == -signal.SIGKILL
        records = list(read_events(tmp_path))
        # Every append is flushed whole-line before the kill reaches us.
        assert [record["index"] for record in records] == list(range(40))
        assert len(segment_paths(tmp_path)) > 1  # sealed segments survived

    def test_sigkilled_queue_worker_leaves_readable_log(self, tmp_path):
        """A real queue worker killed mid-run: the log stays parseable and
        sealed events (lease acquisitions at minimum) survive."""
        from repro.api import ExperimentSpec
        from repro.eval.engine import ArtifactCache
        from repro.queue import RunLedger

        spec = ExperimentSpec(
            models=("KNN",),
            profile="quick",
            devices=("OP3",),
            attack_methods=("FGSM",),
            epsilons=(0.1,),
            phi_percents=(10.0,),
        )
        cache = ArtifactCache(tmp_path / "cache")
        ledger = RunLedger.submit(spec, cache)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "queue", "work",
                ledger.run_id, "--cache-dir", str(cache.root),
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        telemetry = cache.root / "telemetry"
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if any(path.stat().st_size > 0 for path in segment_paths(telemetry)):
                break
            if process.poll() is not None:
                break  # tiny run drained before we could kill it — still valid
            time.sleep(0.05)
        if process.poll() is None:
            process.send_signal(signal.SIGKILL)
        process.wait(timeout=60)
        # The log must be replayable without error and contain only whole
        # records with the standard envelope.
        records = list(read_events(telemetry))
        assert records, "worker produced no durable telemetry"
        assert all("kind" in record and "pid" in record for record in records)
        kinds = {record["kind"] for record in records}
        assert "queue.lease" in kinds
