"""Tests for ``repro obs`` and the CLI telemetry opt-out wiring."""

from __future__ import annotations

import argparse
import json

import pytest

from repro.obs import events, trace
from repro.obs.events import EventSink
from repro.reproduce import _setup_telemetry, main


@pytest.fixture()
def telemetry_dir(tmp_path):
    """A populated event-log directory: two traces, one with a run id."""
    sink = EventSink(tmp_path / "telemetry")
    sink.emit("queue.lease", action="acquired", run_id="run-aaa", unit_id="u1")
    sink.emit(
        "span",
        name="queue.unit",
        trace_id="t1",
        span_id="t1",
        parent_id=None,
        start_unix=1.0,
        duration_s=0.25,
        status="ok",
        attrs={"run_id": "run-aaa", "unit_id": "u1"},
    )
    sink.emit(
        "span",
        name="engine.unit",
        trace_id="t1",
        span_id="s2",
        parent_id="t1",
        start_unix=1.1,
        duration_s=0.2,
        status="ok",
        attrs={"kind": "train", "unit_id": "u1"},
    )
    sink.emit(
        "span",
        name="engine.unit",
        trace_id="t2",
        span_id="s3",
        parent_id=None,
        start_unix=2.0,
        duration_s=0.1,
        status="error",
        attrs={"kind": "eval", "unit_id": "u9"},
    )
    sink.close()
    return tmp_path / "telemetry"


class TestObsSummary:
    def test_json_summary(self, telemetry_dir, capsys):
        assert main(
            ["obs", "summary", "--json", "--telemetry-dir", str(telemetry_dir)]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["events"] == 4
        assert document["kinds"] == {"queue.lease": 1, "span": 3}
        assert document["spans"]["engine.unit"]["count"] == 2
        assert document["spans"]["engine.unit"]["errors"] == 1
        assert document["spans"]["queue.unit"]["mean_ms"] == 250.0

    def test_table_summary(self, telemetry_dir, capsys):
        assert main(["obs", "summary", "--telemetry-dir", str(telemetry_dir)]) == 0
        out = capsys.readouterr().out
        assert "engine.unit" in out
        assert "queue.lease" in out

    def test_cache_dir_points_at_telemetry_subdir(self, telemetry_dir, capsys):
        cache_root = telemetry_dir.parent
        assert main(["obs", "summary", "--json", "--cache-dir", str(cache_root)]) == 0
        assert json.loads(capsys.readouterr().out)["events"] == 4

    def test_empty_dir_summarises_cleanly(self, tmp_path, capsys):
        assert main(
            ["obs", "summary", "--json", "--telemetry-dir", str(tmp_path / "nope")]
        ) == 0
        assert json.loads(capsys.readouterr().out)["events"] == 0


class TestObsTail:
    def test_tail_emits_json_lines(self, telemetry_dir, capsys):
        assert main(["obs", "tail", "--telemetry-dir", str(telemetry_dir)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 4
        assert all(isinstance(json.loads(line), dict) for line in lines)

    def test_tail_kind_and_limit(self, telemetry_dir, capsys):
        assert main(
            [
                "obs", "tail", "--kind", "span", "--limit", "2",
                "--telemetry-dir", str(telemetry_dir),
            ]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["kind"] == "span" for line in lines)


class TestObsSpans:
    def test_span_forest_nests_children(self, telemetry_dir, capsys):
        assert main(
            ["obs", "spans", "--json", "--telemetry-dir", str(telemetry_dir)]
        ) == 0
        forest = json.loads(capsys.readouterr().out)
        assert [root["span_id"] for root in forest] == ["t1", "s3"]
        (child,) = forest[0]["children"]
        assert child["span_id"] == "s2"
        assert child["children"] == []

    def test_run_id_filter_keeps_whole_trace(self, telemetry_dir, capsys):
        assert main(
            [
                "obs", "spans", "--json", "--run-id", "run-aaa",
                "--telemetry-dir", str(telemetry_dir),
            ]
        ) == 0
        forest = json.loads(capsys.readouterr().out)
        assert len(forest) == 1
        assert forest[0]["span_id"] == "t1"
        # The child span has no run_id attr of its own but rides the trace.
        assert forest[0]["children"][0]["span_id"] == "s2"

    def test_text_rendering_indents_by_depth(self, telemetry_dir, capsys):
        assert main(["obs", "spans", "--telemetry-dir", str(telemetry_dir)]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[0].startswith("queue.unit")
        assert lines[1].startswith("  engine.unit")
        assert "[error]" in lines[2]

    def test_orphan_parent_surfaces_as_root(self, tmp_path, capsys):
        sink = EventSink(tmp_path)
        sink.emit(
            "span", name="orphan", trace_id="tX", span_id="sX",
            parent_id="never-finished", start_unix=1.0, duration_s=0.1,
            status="ok", attrs={},
        )
        sink.close()
        assert main(["obs", "spans", "--json", "--telemetry-dir", str(tmp_path)]) == 0
        forest = json.loads(capsys.readouterr().out)
        assert [root["name"] for root in forest] == ["orphan"]


class TestTelemetryOptOut:
    def _args(self, **kv):
        return argparse.Namespace(**kv)

    def test_no_telemetry_flag_disables(self):
        _setup_telemetry(self._args(no_telemetry=True, cache_dir=None))
        assert not trace.telemetry_enabled()
        assert events.configured_sink() is None

    def test_enabled_configures_sink_under_cache(self, tmp_path):
        _setup_telemetry(self._args(no_telemetry=False, cache_dir=tmp_path))
        sink = events.configured_sink()
        assert sink is not None
        assert sink.root == tmp_path / "telemetry"

    def test_env_opt_out_respected(self, tmp_path, monkeypatch):
        monkeypatch.setenv(trace.TELEMETRY_ENV, "0")
        _setup_telemetry(self._args(no_telemetry=False, cache_dir=tmp_path))
        assert events.configured_sink() is None
        assert not trace.telemetry_enabled()

    def test_spans_are_durable_through_cli_wiring(self, tmp_path):
        _setup_telemetry(self._args(no_telemetry=False, cache_dir=tmp_path))
        with trace.span("cli.spin"):
            pass
        events.configure_sink(None)  # flush + close
        records = list(events.read_events(tmp_path / "telemetry"))
        assert [record["name"] for record in records] == ["cli.spin"]
