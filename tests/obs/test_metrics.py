"""Unit tests for the metrics registry and the Prometheus renderer."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import prom
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    OVERFLOW_LABEL,
    MetricsRegistry,
    registries_for_exposition,
)


@pytest.fixture()
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestInstruments:
    def test_counter_counts(self, registry):
        counter = registry.counter("c_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.labels().value == 3.5

    def test_counter_rejects_negative(self, registry):
        with pytest.raises(ValueError):
            registry.counter("c_total").inc(-1)

    def test_gauge_moves_both_ways(self, registry):
        gauge = registry.gauge("g")
        gauge.set(10)
        gauge.inc()
        gauge.dec(4)
        assert gauge.labels().value == 7.0

    def test_histogram_buckets_are_cumulative(self, registry):
        hist = registry.histogram("h_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            hist.observe(value)
        series = hist.labels()
        assert series.count == 4
        assert series.sum == pytest.approx(55.55)
        assert series.bucket_counts() == [1, 2, 3]  # le=0.1, le=1, le=10

    def test_labeled_series_are_independent(self, registry):
        counter = registry.counter("reqs_total", labelnames=("endpoint",))
        counter.labels(endpoint="a").inc()
        counter.labels(endpoint="a").inc()
        counter.labels(endpoint="b").inc()
        assert counter.labels(endpoint="a").value == 2
        assert counter.labels(endpoint="b").value == 1

    def test_label_arity_is_checked(self, registry):
        counter = registry.counter("reqs_total", labelnames=("endpoint",))
        with pytest.raises(ValueError):
            counter.labels("a", "b")
        with pytest.raises(ValueError):
            counter.labels(wrong="a")

    def test_thread_safety_under_contention(self, registry):
        counter = registry.counter("racy_total")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.labels().value == 8000


class TestCardinalityCap:
    def test_overflow_collapses_into_one_series(self, registry):
        counter = registry.counter(
            "capped_total", labelnames=("who",), max_series=2
        )
        counter.labels(who="a").inc()
        counter.labels(who="b").inc()
        for junk in ("x", "y", "z"):
            counter.labels(who=junk).inc()
        collected = dict(
            (labels["who"], series.value) for labels, series in counter.collect()
        )
        assert collected == {"a": 1, "b": 1, OVERFLOW_LABEL: 3}


class TestRegistry:
    def test_get_or_create_returns_same_metric(self, registry):
        first = registry.counter("same_total", labelnames=("l",))
        second = registry.counter("same_total", labelnames=("l",))
        assert first is second

    def test_schema_conflict_raises(self, registry):
        registry.counter("conflict_total")
        with pytest.raises(ValueError):
            registry.gauge("conflict_total")
        registry.counter("labels_total", labelnames=("a",))
        with pytest.raises(ValueError):
            registry.counter("labels_total", labelnames=("b",))

    def test_snapshot_is_json_serialisable(self, registry):
        registry.counter("c_total", labelnames=("l",)).labels(l="v").inc()
        registry.gauge("g").set(2)
        registry.histogram("h").observe(0.01)
        document = json.loads(json.dumps(registry.snapshot()))
        assert document["c_total"]["type"] == "counter"
        assert document["c_total"]["series"] == [
            {"labels": {"l": "v"}, "value": 1.0}
        ]
        assert document["h"]["series"][0]["value"]["count"] == 1

    def test_registries_for_exposition_dedups_and_includes_default(self):
        from repro.obs.metrics import REGISTRY

        mine = MetricsRegistry()
        merged = registries_for_exposition(mine, mine, None)
        assert merged == [mine, REGISTRY]


class TestPrometheusRendering:
    def test_counter_and_gauge_lines(self, registry):
        registry.counter("reqs_total", "Requests", ("endpoint",)).labels(
            endpoint="a/b"
        ).inc(3)
        registry.gauge("depth").set(2)
        text = prom.render(registry)
        assert "# HELP reqs_total Requests" in text
        assert "# TYPE reqs_total counter" in text
        assert 'reqs_total{endpoint="a/b"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "depth 2" in text.splitlines()

    def test_histogram_exposition_shape(self, registry):
        hist = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(5.0)
        lines = prom.render(registry).splitlines()
        assert 'lat_seconds_bucket{le="0.1"} 1' in lines
        assert 'lat_seconds_bucket{le="1"} 1' in lines
        assert 'lat_seconds_bucket{le="+Inf"} 2' in lines
        assert "lat_seconds_count 2" in lines
        assert any(line.startswith("lat_seconds_sum ") for line in lines)

    def test_label_values_are_escaped(self, registry):
        registry.counter("esc_total", labelnames=("v",)).labels(
            v='quo"te\nnew'
        ).inc()
        text = prom.render(registry)
        assert 'esc_total{v="quo\\"te\\nnew"} 1' in text

    def test_render_registries_skips_duplicate_families(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("shared_total").inc(1)
        second.counter("shared_total").inc(99)
        second.counter("only_second_total").inc(7)
        lines = prom.render_registries([first, second]).splitlines()
        assert "shared_total 1" in lines
        assert "shared_total 99" not in lines
        assert "only_second_total 7" in lines

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
