"""Telemetry-test hygiene: every test leaves the process-global state clean.

The obs subsystem has three process-globals — the enabled override, the
durable event sink, and the default metrics registry.  Tests that flip the
first two must not leak into each other (or into the rest of the suite);
the default registry is shared by design, so tests assert on *deltas*.
"""

from __future__ import annotations

import pytest

from repro.obs import events, trace


@pytest.fixture(autouse=True)
def _clean_telemetry_globals():
    yield
    events.configure_sink(None)
    trace.set_enabled(None)
