"""Span correctness: nesting, hand-offs, and engine-unit attribution.

The headline invariants from the telemetry contract:

* spans nest correctly through nested ``with`` blocks, asyncio tasks, and
  explicit thread hand-offs (the MicroBatcher flusher);
* exactly one ``engine.unit`` span is recorded per *executed* unit, and its
  ``cache_hits``/``cache_misses`` attribution matches the ArtifactCache's
  own accounting;
* with telemetry disabled, no spans exist at all.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.obs import trace
from repro.obs.metrics import REGISTRY


@pytest.fixture()
def collected():
    spans = []
    trace.add_exporter(spans.append)
    yield spans
    trace.remove_exporter(spans.append)


class TestNesting:
    def test_parent_child_linkage(self, collected):
        with trace.span("outer") as outer:
            with trace.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id == outer.span_id
        assert [span.name for span in collected] == ["inner", "outer"]

    def test_current_tracks_innermost(self):
        assert trace.current() is None
        with trace.span("a") as outer:
            assert trace.current() is outer
            with trace.span("b") as inner:
                assert trace.current() is inner
            assert trace.current() is outer
        assert trace.current() is None

    def test_exception_marks_error_status(self, collected):
        with pytest.raises(RuntimeError):
            with trace.span("boom"):
                raise RuntimeError("no")
        (span,) = collected
        assert span.status == "error"
        assert span.attrs["error"] == "RuntimeError"

    def test_set_updates_attrs(self, collected):
        with trace.span("attrs", static=1) as span:
            span.set(dynamic=2)
        assert collected[0].attrs == {"static": 1, "dynamic": 2}

    def test_disabled_spans_are_free_and_absent(self, collected):
        trace.set_enabled(False)
        context = trace.span("ghost")
        assert context is trace.span("ghost2")  # shared null context
        with context as span:
            span.set(ignored=True)
        assert trace.current() is None
        assert collected == []

    def test_finished_spans_feed_registry_metrics(self):
        counter = REGISTRY.counter(
            "repro_spans_total", "Finished spans by name", ("name", "status")
        )
        before = counter.labels(name="metric.probe", status="ok").value
        with trace.span("metric.probe"):
            pass
        assert counter.labels(name="metric.probe", status="ok").value == before + 1


class TestHandOffs:
    def test_attach_carries_parent_across_threads(self, collected):
        def worker(parent):
            with trace.attach(parent):
                with trace.span("child.thread"):
                    pass

        with trace.span("parent.main") as parent:
            thread = threading.Thread(target=worker, args=(trace.current(),))
            thread.start()
            thread.join()
        child = next(s for s in collected if s.name == "child.thread")
        assert child.parent_id == parent.span_id
        assert child.trace_id == parent.trace_id

    def test_asyncio_tasks_inherit_the_ambient_span(self, collected):
        async def task_body():
            with trace.span("child.task"):
                await asyncio.sleep(0)

        async def main():
            with trace.span("parent.async") as parent:
                await asyncio.gather(task_body(), task_body())
                return parent

        parent = asyncio.run(main())
        children = [s for s in collected if s.name == "child.task"]
        assert len(children) == 2
        assert {s.parent_id for s in children} == {parent.span_id}

    def test_microbatcher_flush_span_parents_to_submitter(self, collected):
        from repro.serve.batching import MicroBatcher

        def localize(features):
            from repro.api import LocalizationResult

            n = features.shape[0]
            return LocalizationResult(
                labels=np.zeros(n, dtype=np.int64),
                coordinates=np.zeros((n, 2)),
                error_estimate=np.zeros(n),
            )

        with trace.span("request.side") as request_span:
            with MicroBatcher(localize, max_batch=4, max_wait_ms=1.0) as batcher:
                batcher.submit(np.zeros(3)).result(timeout=5)
        flush = next(s for s in collected if s.name == "serve.batch.flush")
        assert flush.parent_id == request_span.span_id
        assert flush.trace_id == request_span.trace_id
        assert flush.attrs["requests"] == 1
        assert flush.attrs["batch_size"] == 1


class TestEngineUnitAttribution:
    @pytest.fixture(scope="class")
    def spec(self):
        from repro.api import ExperimentSpec

        return ExperimentSpec(
            models=("KNN",),
            profile="quick",
            devices=("OP3",),
            attack_methods=("FGSM",),
            epsilons=(0.1,),
            phi_percents=(10.0,),
        )

    def test_one_span_per_executed_unit_with_cache_attribution(
        self, spec, tmp_path, collected
    ):
        from repro.api import run_experiment
        from repro.eval.engine import ArtifactCache

        cache_dir = tmp_path / "cache"

        cold_cache = ArtifactCache(cache_dir)
        run_experiment(spec, cache=cold_cache)
        cold = [s for s in collected if s.name == "engine.unit"]
        collected.clear()

        warm_cache = ArtifactCache(cache_dir)
        run_experiment(spec, cache=warm_cache)
        warm = [s for s in collected if s.name == "engine.unit"]

        # Exactly one span per executed unit: unit ids are unique within a
        # run and the two runs execute the identical plan.
        cold_ids = [s.attrs["unit_id"] for s in cold]
        warm_ids = [s.attrs["unit_id"] for s in warm]
        assert len(cold_ids) == len(set(cold_ids))
        assert sorted(cold_ids) == sorted(warm_ids)
        assert all(s.status == "ok" for s in cold + warm)
        assert {s.attrs["kind"] for s in cold} >= {"campaign", "train", "eval"}

        # Attribution matches the cache's own books exactly.
        assert sum(s.attrs["cache_hits"] for s in cold) == cold_cache.stats.hits
        assert sum(s.attrs["cache_misses"] for s in cold) == cold_cache.stats.misses
        assert sum(s.attrs["cache_hits"] for s in warm) == warm_cache.stats.hits
        assert sum(s.attrs["cache_misses"] for s in warm) == warm_cache.stats.misses
        assert cold_cache.stats.misses > 0
        # The warm run recomputes nothing.
        assert warm_cache.stats.misses == 0
        assert all(s.attrs["cache_misses"] == 0 for s in warm)

    def test_disabled_telemetry_yields_no_engine_spans(self, spec, collected):
        from repro.api import run_experiment

        trace.set_enabled(False)
        results = run_experiment(spec, cache=False)
        trace.set_enabled(None)
        assert len(results.to_records()) > 0
        assert [s for s in collected if s.name == "engine.unit"] == []
