"""Serving-layer observability: Prometheus exposition, connection lifecycle
metrics and pre-resolution request counting on both HTTP front ends."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import LocalizationService
from repro.serve import ModelStore, ServiceClient, create_server
from repro.serve.aio.server import AioServerThread


@pytest.fixture()
def published_store(tiny_campaign, tmp_path) -> ModelStore:
    store = ModelStore(tmp_path / "store")
    service = LocalizationService("KNN", params={"k": 3}).fit(tiny_campaign.train)
    store.publish(service, "knn", tags=("prod",))
    return store


@pytest.fixture()
def running_server(published_store):
    server = create_server(
        published_store,
        port=0,
        routes={"building-1/knn": "knn@prod"},
        max_batch=8,
        max_wait_ms=2.0,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.app.close()
        server.server_close()


@pytest.fixture()
def base_url(running_server) -> str:
    host, port = running_server.server_address[:2]
    return f"http://{host}:{port}"


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.headers, response.read()


def _post_localize(url: str, payload: dict) -> int:
    body = json.dumps(payload).encode()
    request = urllib.request.Request(
        f"{url}/v1/localize", data=body,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status
    except urllib.error.HTTPError as error:
        return error.code


class TestPrometheusExposition:
    def test_stdlib_prometheus_content_negotiation(self, base_url, tiny_campaign):
        features = tiny_campaign.test_for("S7").features[:2].tolist()
        assert _post_localize(base_url, {"model": "knn", "fingerprints": features}) == 200

        status, headers, body = _get(f"{base_url}/metrics?format=prometheus")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        text = body.decode()
        assert "# TYPE repro_http_requests_total counter" in text
        assert 'repro_http_requests_total{transport="stdlib",endpoint="knn"} 1' in text
        # Gateway endpoint stats share the app registry and appear alongside.
        assert "repro_endpoint_requests_total" in text

        # The default /metrics stays the JSON document.
        status, headers, body = _get(f"{base_url}/metrics")
        assert headers["Content-Type"].startswith("application/json")
        document = json.loads(body)
        assert "gateway" in document and "server" in document

    def test_aio_prometheus_content_negotiation(self, published_store, tiny_campaign):
        with AioServerThread(
            published_store, routes={"building-1/knn": "knn@prod"}
        ) as server:
            with ServiceClient(server.base_url) as client:
                client.localize(
                    tiny_campaign.test_for("S7").features[:2], model="knn"
                )
            status, headers, body = _get(
                f"{server.base_url}/metrics?format=prometheus"
            )
            assert status == 200
            assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
            text = body.decode()
            assert "# TYPE repro_http_requests_total counter" in text
            assert 'transport="aio"' in text

    def test_prometheus_document_parses_cleanly(self, base_url):
        _get(f"{base_url}/healthz")
        _, _, body = _get(f"{base_url}/metrics?format=prometheus")
        families = set()
        for line in body.decode().splitlines():
            assert line, "exposition must not contain blank lines"
            if line.startswith("# TYPE"):
                _, _, name, kind = line.split(" ", 3)
                assert kind in ("counter", "gauge", "histogram")
                assert name not in families, "metric family repeated"
                families.add(name)
            elif not line.startswith("#"):
                name_and_labels, _, value = line.rpartition(" ")
                assert name_and_labels
                float(value)  # every sample value is a number
        assert "repro_http_connections_accepted_total" in families


class TestRequestAccounting:
    def test_unknown_model_counted_before_resolution(self, base_url, running_server):
        """404s must be attributed to the *requested* endpoint — the gateway
        never creates stats for unknown models, so the HTTP layer counts."""
        status = _post_localize(
            base_url, {"model": "no-such-model", "fingerprints": [[0.0]]}
        )
        assert status == 404
        document = running_server.app.metrics_document()
        server_doc = document["server"]
        assert server_doc["requests"]["stdlib"]["no-such-model"] == 1
        assert server_doc["responses"]["stdlib"]["no-such-model"]["404"] == 1
        # The gateway's per-endpoint stats stay orphan-free.
        assert "no-such-model" not in document["gateway"]["endpoints"]

    def test_undecodable_body_counted_against_path(self, base_url, running_server):
        """A body that cannot be decoded has no requested endpoint yet — the
        error is attributed to the request path itself."""
        request = urllib.request.Request(
            f"{base_url}/v1/localize", data=b"not json{",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        server_doc = running_server.app.server_document()
        assert server_doc["responses"]["stdlib"]["/v1/localize"]["400"] == 1

    def test_payload_without_model_counted_as_invalid(self, base_url, running_server):
        status = _post_localize(base_url, {"fingerprints": [[0.0]]})
        assert status in (400, 404)
        server_doc = running_server.app.server_document()
        assert server_doc["requests"]["stdlib"]["_invalid"] == 1

    def test_aio_unknown_model_counted_before_resolution(
        self, published_store
    ):
        with AioServerThread(
            published_store, routes={"building-1/knn": "knn@prod"}
        ) as server:
            status = _post_localize(
                server.base_url, {"model": "ghost", "fingerprints": [[0.0]]}
            )
            assert status == 404
            server_doc = server.app.app.server_document()
            assert server_doc["requests"]["aio"]["ghost"] == 1
            assert server_doc["responses"]["aio"]["ghost"]["404"] == 1


class TestConnectionLifecycle:
    def test_stdlib_connections_accepted_and_closed(self, base_url, running_server):
        for _ in range(3):
            _get(f"{base_url}/healthz")
        connections = running_server.app.server_document()["connections"]["stdlib"]
        assert connections["accepted"] >= 3
        assert connections["closed"] + connections["active"] == connections["accepted"]

    def test_aio_keepalive_reuse_is_counted(self, published_store, tiny_campaign):
        features = tiny_campaign.test_for("S7").features[:1]
        with AioServerThread(
            published_store, routes={"building-1/knn": "knn@prod"}
        ) as server:
            with ServiceClient(server.base_url) as client:
                for _ in range(4):  # one persistent connection, four requests
                    client.localize(features, model="knn")
            connections = server.app.app.server_document()["connections"]["aio"]
            assert connections["accepted"] >= 1
            assert connections["keepalive_reuses"] >= 3

    def test_isolated_apps_do_not_share_counters(self, published_store):
        """Two ServingApps in one process must not see each other's traffic."""
        from repro.serve.http import ServingApp

        first = ServingApp(published_store)
        second = ServingApp(published_store)
        first.record_http_request("stdlib", "knn")
        assert second.server_document()["requests"] == {}
        first.close()
        second.close()
