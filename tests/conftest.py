"""Shared fixtures: a tiny synthetic campaign and pre-trained small models.

The tiny building keeps every training-based test fast (a handful of access
points, a short path, coarse reference-point granularity) while exercising the
exact same code paths as the paper-scale buildings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import DNNLocalizer, KNNLocalizer
from repro.core import CALLOC
from repro.data import (
    Building,
    BuildingSpec,
    CampaignConfig,
    LocalizationCampaign,
    Material,
    build_building,
    collect_campaign,
)


@pytest.fixture(scope="session")
def tiny_spec() -> BuildingSpec:
    """A small building specification used across the test suite."""
    return BuildingSpec(
        name="Tiny Lab",
        visible_aps=24,
        path_length_m=16.0,
        characteristics=(Material.WOOD, Material.CONCRETE),
        width_m=20.0,
        depth_m=14.0,
        dynamic_noise_db=1.5,
        shadowing_std_db=3.0,
    )


@pytest.fixture(scope="session")
def tiny_building(tiny_spec: BuildingSpec) -> Building:
    """Instantiated tiny building with 2 m reference-point granularity."""
    return build_building(tiny_spec, rp_granularity_m=2.0, seed=42)


@pytest.fixture(scope="session")
def tiny_campaign(tiny_building: Building) -> LocalizationCampaign:
    """Simulated campaign (train on OP3, test on all devices) in the tiny building."""
    return collect_campaign(tiny_building, CampaignConfig(seed=11))


@pytest.fixture(scope="session")
def trained_knn(tiny_campaign: LocalizationCampaign) -> KNNLocalizer:
    """A fitted KNN localizer on the tiny campaign."""
    return KNNLocalizer(k=3).fit(tiny_campaign.train)


@pytest.fixture(scope="session")
def trained_dnn(tiny_campaign: LocalizationCampaign) -> DNNLocalizer:
    """A fitted DNN localizer on the tiny campaign (small epoch budget)."""
    return DNNLocalizer(hidden_dims=(32,), epochs=25, seed=0).fit(tiny_campaign.train)


@pytest.fixture(scope="session")
def trained_calloc(tiny_campaign: LocalizationCampaign) -> CALLOC:
    """A fitted CALLOC localizer on the tiny campaign (short curriculum)."""
    model = CALLOC(
        embed_dim=32,
        attention_dim=16,
        num_lessons=4,
        epochs_per_lesson=3,
        seed=0,
    )
    return model.fit(tiny_campaign.train)


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(1234)
