"""Property-based tests for the data substrate."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data import RSS_CEIL_DBM, RSS_FLOOR_DBM, denormalize_rss, normalize_rss
from repro.data.devices import paper_device

rss_values = st.floats(min_value=-150.0, max_value=30.0, allow_nan=False, allow_infinity=False)


@settings(max_examples=50, deadline=None)
@given(arrays(dtype=np.float64, shape=(8,), elements=rss_values))
def test_normalized_features_always_in_unit_interval(rss):
    features = normalize_rss(rss)
    assert features.min() >= 0.0 and features.max() <= 1.0


@settings(max_examples=50, deadline=None)
@given(
    arrays(
        dtype=np.float64,
        shape=(8,),
        elements=st.floats(min_value=-100.0, max_value=0.0, allow_nan=False),
    )
)
def test_normalize_denormalize_round_trip_inside_range(rss):
    np.testing.assert_allclose(denormalize_rss(normalize_rss(rss)), rss, atol=1e-9)


@settings(max_examples=50, deadline=None)
@given(
    arrays(dtype=np.float64, shape=(16,), elements=rss_values),
    st.sampled_from(["BLU", "HTC", "S7", "LG", "MOTO", "OP3"]),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_device_transform_stays_in_physical_range(rss, acronym, seed):
    device = paper_device(acronym)
    observed = device.apply(rss, np.random.default_rng(seed))
    assert observed.min() >= RSS_FLOOR_DBM
    assert observed.max() <= RSS_CEIL_DBM


@settings(max_examples=50, deadline=None)
@given(
    st.sampled_from(["BLU", "HTC", "S7", "LG", "MOTO", "OP3"]),
    st.integers(min_value=1, max_value=64),
)
def test_ap_response_is_deterministic(acronym, num_aps):
    device = paper_device(acronym)
    np.testing.assert_allclose(device.ap_response(num_aps), device.ap_response(num_aps))


@settings(max_examples=50, deadline=None)
@given(
    arrays(
        dtype=np.float64,
        shape=(4, 6),
        elements=st.floats(min_value=-100.0, max_value=0.0, allow_nan=False),
    )
)
def test_undetected_aps_remain_undetected_after_device_transform(rss):
    rss[:, 0] = RSS_FLOOR_DBM
    observed = paper_device("MOTO").apply(rss, np.random.default_rng(0))
    assert (observed[:, 0] == RSS_FLOOR_DBM).all()


@settings(max_examples=50, deadline=None)
@given(
    arrays(dtype=np.float64, shape=(5, 9), elements=rss_values),
    st.sampled_from(["BLU", "HTC", "S7", "LG", "MOTO", "OP3"]),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_device_readings_lie_on_the_quantization_grid(rss, acronym, seed):
    # Driver RSSI is quantised: every reported value is a multiple of the
    # device's quantisation step (the -100/0 dBm clip bounds are themselves on
    # every paper device's grid).
    device = paper_device(acronym)
    observed = device.apply(rss, np.random.default_rng(seed))
    steps = observed / device.quantization_db
    np.testing.assert_allclose(steps, np.round(steps), atol=1e-9)


@settings(max_examples=50, deadline=None)
@given(
    arrays(dtype=np.float64, shape=(5, 9), elements=rss_values),
    st.sampled_from(["BLU", "HTC", "S7", "LG", "MOTO", "OP3"]),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_no_reading_below_the_device_detection_threshold(rss, acronym, seed):
    # A device never reports a signal weaker than its detection threshold:
    # such readings collapse to the -100 dBm "not detected" floor.
    device = paper_device(acronym)
    observed = device.apply(rss, np.random.default_rng(seed))
    assert (
        (observed == RSS_FLOOR_DBM) | (observed >= device.detection_threshold_dbm)
    ).all()
