"""Unit tests for building floorplans, access points and reference points."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    MATERIAL_ATTENUATION_DB,
    PAPER_BUILDING_SPECS,
    AccessPoint,
    Material,
    ReferencePoint,
    Wall,
    build_building,
    paper_building,
    paper_buildings,
)


class TestTableII:
    def test_five_buildings_defined(self):
        assert len(PAPER_BUILDING_SPECS) == 5

    @pytest.mark.parametrize(
        "name, aps, path",
        [
            ("Building 1", 156, 64.0),
            ("Building 2", 125, 62.0),
            ("Building 3", 78, 88.0),
            ("Building 4", 112, 68.0),
            ("Building 5", 218, 60.0),
        ],
    )
    def test_specs_match_paper(self, name, aps, path):
        spec = PAPER_BUILDING_SPECS[name]
        assert spec.visible_aps == aps
        assert spec.path_length_m == pytest.approx(path)

    def test_building_5_has_most_aps(self):
        counts = {name: spec.visible_aps for name, spec in PAPER_BUILDING_SPECS.items()}
        assert max(counts, key=counts.get) == "Building 5"

    def test_characteristics_use_known_materials(self):
        for spec in PAPER_BUILDING_SPECS.values():
            assert set(spec.characteristics) <= set(MATERIAL_ATTENUATION_DB)


class TestBuildingConstruction:
    def test_generated_ap_count_matches_spec(self):
        building = paper_building("Building 2", rp_granularity_m=2.0)
        assert building.num_access_points == 125

    def test_path_length_matches_spec(self):
        building = paper_building("Building 1", rp_granularity_m=1.0)
        assert building.path_length_m == pytest.approx(64.0)

    def test_rp_count_scales_with_granularity(self):
        fine = paper_building("Building 1", rp_granularity_m=1.0)
        coarse = paper_building("Building 1", rp_granularity_m=2.0)
        assert fine.num_reference_points > coarse.num_reference_points
        assert fine.num_reference_points == 65  # 64 m path at 1 m granularity

    def test_same_seed_is_deterministic(self, tiny_spec):
        a = build_building(tiny_spec, seed=5)
        b = build_building(tiny_spec, seed=5)
        assert [ap.position for ap in a.access_points] == [ap.position for ap in b.access_points]

    def test_different_seeds_differ(self, tiny_spec):
        a = build_building(tiny_spec, seed=5)
        b = build_building(tiny_spec, seed=6)
        assert [ap.position for ap in a.access_points] != [ap.position for ap in b.access_points]

    def test_unknown_building_raises(self):
        with pytest.raises(KeyError):
            paper_building("Building 99")

    def test_invalid_granularity_raises(self, tiny_spec):
        with pytest.raises(ValueError):
            build_building(tiny_spec, rp_granularity_m=0.0)

    def test_paper_buildings_returns_all_five(self):
        assert len(paper_buildings(rp_granularity_m=4.0)) == 5

    def test_rp_positions_shape(self, tiny_building):
        positions = tiny_building.rp_positions()
        assert positions.shape == (tiny_building.num_reference_points, 2)

    def test_rp_distance_matrix_is_symmetric_with_zero_diagonal(self, tiny_building):
        distances = tiny_building.rp_distance_matrix()
        np.testing.assert_allclose(distances, distances.T)
        np.testing.assert_allclose(np.diag(distances), 0.0)

    def test_consecutive_rps_are_close(self, tiny_building):
        positions = tiny_building.rp_positions()
        steps = np.linalg.norm(np.diff(positions, axis=0), axis=1)
        assert steps.max() <= 6.0  # granularity or a corridor turn


class TestGeometryPrimitives:
    def test_access_point_distance(self):
        ap = AccessPoint(identifier=0, position=(0.0, 0.0))
        assert ap.distance_to((3.0, 4.0)) == pytest.approx(5.0)

    def test_reference_point_distance(self):
        a = ReferencePoint(0, (0.0, 0.0))
        b = ReferencePoint(1, (1.0, 1.0))
        assert a.distance_to(b) == pytest.approx(np.sqrt(2))

    def test_wall_attenuation_lookup(self):
        wall = Wall(start=(0, 0), end=(0, 5), material=Material.METAL)
        assert wall.attenuation_db == MATERIAL_ATTENUATION_DB[Material.METAL]

    def test_wall_intersection_detects_crossing(self):
        wall = Wall(start=(1.0, -1.0), end=(1.0, 1.0))
        assert wall.intersects((0.0, 0.0), (2.0, 0.0))

    def test_wall_intersection_rejects_parallel_segments(self):
        wall = Wall(start=(0.0, 1.0), end=(5.0, 1.0))
        assert not wall.intersects((0.0, 0.0), (5.0, 0.0))

    def test_wall_attenuation_along_link(self, tiny_building):
        ap = tiny_building.access_points[0]
        rp = tiny_building.reference_points[-1]
        total = tiny_building.wall_attenuation_db(ap, rp)
        crossings = tiny_building.wall_crossings(ap, rp)
        assert total == pytest.approx(sum(w.attenuation_db for w in crossings))

    def test_material_attenuations_are_ordered(self):
        assert (
            MATERIAL_ATTENUATION_DB[Material.WOOD]
            < MATERIAL_ATTENUATION_DB[Material.CONCRETE]
            < MATERIAL_ATTENUATION_DB[Material.METAL]
        )
