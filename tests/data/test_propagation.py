"""Unit tests for the RSS propagation model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import RSS_CEIL_DBM, RSS_FLOOR_DBM, PropagationConfig, PropagationModel


@pytest.fixture(scope="module")
def model(tiny_building):
    return PropagationModel(tiny_building, seed=3)


class TestMeanRSS:
    def test_shape(self, model, tiny_building):
        assert model.mean_rss_dbm.shape == (
            tiny_building.num_reference_points,
            tiny_building.num_access_points,
        )

    def test_signal_decays_with_distance(self, tiny_building):
        config = PropagationConfig()
        quiet = PropagationModel(tiny_building, config=config, seed=3)
        ap = tiny_building.access_points[0]
        distances = np.array(
            [ap.distance_to(rp.position) for rp in tiny_building.reference_points]
        )
        rss = quiet.mean_rss_dbm[:, 0]
        near, far = distances.argmin(), distances.argmax()
        assert rss[near] > rss[far]

    def test_same_seed_reproducible(self, tiny_building):
        a = PropagationModel(tiny_building, seed=3).mean_rss_dbm
        b = PropagationModel(tiny_building, seed=3).mean_rss_dbm
        np.testing.assert_allclose(a, b)

    def test_different_seed_changes_shadowing(self, tiny_building):
        a = PropagationModel(tiny_building, seed=3).mean_rss_dbm
        b = PropagationModel(tiny_building, seed=4).mean_rss_dbm
        assert not np.allclose(a, b)

    def test_shadowing_is_spatially_correlated(self, tiny_building):
        model = PropagationModel(tiny_building, seed=3)
        shadowing = model._shadowing
        # Correlation between adjacent RPs should exceed correlation between
        # the two most distant RPs (averaged over APs).
        adjacent = np.corrcoef(shadowing[0], shadowing[1])[0, 1]
        distant = np.corrcoef(shadowing[0], shadowing[-1])[0, 1]
        assert adjacent > distant


class TestSampling:
    def test_sample_within_physical_range(self, model, rng):
        scan = model.sample(0, rng)
        assert scan.min() >= RSS_FLOOR_DBM
        assert scan.max() <= RSS_CEIL_DBM

    def test_sample_out_of_range_rp_raises(self, model, rng):
        with pytest.raises(IndexError):
            model.sample(10_000, rng)

    def test_sample_batch_shape(self, model, rng, tiny_building):
        scans = model.sample_batch(np.array([0, 1, 2, 0]), rng)
        assert scans.shape == (4, tiny_building.num_access_points)

    def test_scans_at_same_rp_differ_due_to_noise(self, model, rng):
        a = model.sample(0, rng)
        b = model.sample(0, rng)
        assert not np.allclose(a, b)

    def test_detection_threshold_masks_weak_aps(self, tiny_building, rng):
        config = PropagationConfig(detection_threshold_dbm=-50.0, scan_dropout_rate=0.0)
        model = PropagationModel(tiny_building, config=config, seed=3)
        scan = model.sample(0, rng)
        assert ((scan >= -50.0) | (scan == RSS_FLOOR_DBM)).all()

    def test_scan_dropout_forces_floor_values(self, tiny_building, rng):
        config = PropagationConfig(scan_dropout_rate=0.9)
        model = PropagationModel(tiny_building, config=config, seed=3)
        scan = model.sample(0, rng)
        assert (scan == RSS_FLOOR_DBM).mean() > 0.5

    def test_zero_noise_config_is_deterministic(self, tiny_building):
        config = PropagationConfig(scan_dropout_rate=0.0, multipath_std_db=0.0)
        model = PropagationModel(tiny_building, config=config, seed=3)
        a = model.sample(2, np.random.default_rng(0), temporal_noise_db=0.0)
        b = model.sample(2, np.random.default_rng(1), temporal_noise_db=0.0)
        np.testing.assert_allclose(a, b)

    def test_apply_detection_clips_and_floors(self, model):
        raw = np.array([-120.0, -97.0, -60.0, 10.0])
        processed = model.apply_detection(raw)
        assert processed[0] == RSS_FLOOR_DBM
        assert processed[1] == RSS_FLOOR_DBM  # below default detection threshold
        assert processed[2] == -60.0
        assert processed[3] == RSS_CEIL_DBM
