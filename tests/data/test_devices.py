"""Unit tests for device heterogeneity profiles (Table I)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    PAPER_DEVICES,
    RSS_FLOOR_DBM,
    TRAINING_DEVICE,
    DeviceProfile,
    device_acronyms,
    paper_device,
    paper_devices,
)


class TestTableI:
    def test_six_devices(self):
        assert len(PAPER_DEVICES) == 6
        assert len(paper_devices()) == 6

    def test_acronyms_match_paper(self):
        assert device_acronyms() == ["BLU", "HTC", "S7", "LG", "MOTO", "OP3"]

    def test_training_device_is_op3(self):
        assert TRAINING_DEVICE == "OP3"

    def test_lookup_by_acronym(self):
        assert paper_device("S7").manufacturer == "Samsung"

    def test_unknown_acronym_raises(self):
        with pytest.raises(KeyError):
            paper_device("PIXEL")

    def test_devices_are_heterogeneous(self):
        offsets = {profile.rss_offset_db for profile in PAPER_DEVICES.values()}
        assert len(offsets) > 1

    def test_training_device_is_reference_like(self):
        op3 = paper_device("OP3")
        assert op3.rss_offset_db == pytest.approx(0.0)
        assert op3.rss_gain == pytest.approx(1.0)


class TestDeviceTransform:
    def test_apply_keeps_physical_range(self, rng):
        device = paper_device("MOTO")
        observed = device.apply(np.linspace(-110, 5, 50), rng)
        assert observed.min() >= RSS_FLOOR_DBM
        assert observed.max() <= 0.0

    def test_undetected_ap_stays_undetected(self, rng):
        device = paper_device("HTC")
        observed = device.apply(np.array([RSS_FLOOR_DBM, -50.0]), rng)
        assert observed[0] == RSS_FLOOR_DBM

    def test_offset_shifts_readings(self, rng):
        biased = DeviceProfile(
            manufacturer="X", model="Y", acronym="XY",
            rss_offset_db=8.0, noise_std_db=0.0, quantization_db=0.0,
            ap_response_std_db=0.0,
        )
        observed = biased.apply(np.full(10, -60.0), rng)
        np.testing.assert_allclose(observed, -52.0)

    def test_quantization_rounds_to_step(self, rng):
        device = DeviceProfile(
            manufacturer="X", model="Y", acronym="Q",
            noise_std_db=0.0, quantization_db=2.0, ap_response_std_db=0.0,
        )
        observed = device.apply(np.array([-60.7, -61.3]), rng)
        assert set(np.unique(observed)) <= {-60.0, -62.0}

    def test_ap_response_is_deterministic_per_device(self):
        device = paper_device("LG")
        np.testing.assert_allclose(device.ap_response(32), device.ap_response(32))

    def test_ap_response_differs_between_devices(self):
        assert not np.allclose(
            paper_device("LG").ap_response(32), paper_device("BLU").ap_response(32)
        )

    def test_detection_threshold_drops_weak_signals(self, rng):
        device = DeviceProfile(
            manufacturer="X", model="Y", acronym="T",
            detection_threshold_dbm=-70.0, noise_std_db=0.0,
            quantization_db=0.0, ap_response_std_db=0.0,
        )
        observed = device.apply(np.array([-80.0, -60.0]), rng)
        assert observed[0] == RSS_FLOOR_DBM
        assert observed[1] == -60.0

    def test_same_channel_seen_differently_by_two_devices(self, rng):
        channel = np.linspace(-90, -40, 30)
        a = paper_device("MOTO").apply(channel, np.random.default_rng(0))
        b = paper_device("OP3").apply(channel, np.random.default_rng(0))
        assert np.abs(a - b).mean() > 1.0
