"""Unit tests for fingerprint dataset containers and normalisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import FingerprintDataset, denormalize_rss, normalize_rss


@pytest.fixture()
def small_dataset() -> FingerprintDataset:
    rng = np.random.default_rng(0)
    rss = rng.uniform(-100, -30, size=(12, 6))
    labels = np.repeat(np.arange(4), 3)
    positions = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0], [3.0, 0.0]])
    devices = np.array(["OP3"] * 6 + ["S7"] * 6, dtype=object)
    return FingerprintDataset(rss, labels, positions, building="Test", devices=devices)


class TestNormalization:
    def test_normalize_range(self):
        features = normalize_rss(np.array([-100.0, -50.0, 0.0]))
        np.testing.assert_allclose(features, [0.0, 0.5, 1.0])

    def test_normalize_clips_out_of_range(self):
        features = normalize_rss(np.array([-120.0, 20.0]))
        np.testing.assert_allclose(features, [0.0, 1.0])

    def test_round_trip(self):
        rss = np.array([-95.0, -60.0, -10.0])
        np.testing.assert_allclose(denormalize_rss(normalize_rss(rss)), rss)

    def test_denormalize_clips(self):
        np.testing.assert_allclose(denormalize_rss(np.array([-0.5, 1.5])), [-100.0, 0.0])


class TestDatasetConstruction:
    def test_basic_properties(self, small_dataset):
        assert small_dataset.num_samples == 12
        assert small_dataset.num_aps == 6
        assert small_dataset.num_classes == 4
        assert len(small_dataset) == 12

    def test_features_in_unit_range(self, small_dataset):
        features = small_dataset.features
        assert features.min() >= 0.0 and features.max() <= 1.0

    def test_rejects_label_sample_mismatch(self):
        with pytest.raises(ValueError):
            FingerprintDataset(np.zeros((3, 2)), np.zeros(4, dtype=int), np.zeros((1, 2)))

    def test_rejects_bad_rp_positions(self):
        with pytest.raises(ValueError):
            FingerprintDataset(np.zeros((3, 2)), np.zeros(3, dtype=int), np.zeros((1, 3)))

    def test_rejects_label_out_of_range(self):
        with pytest.raises(ValueError):
            FingerprintDataset(np.zeros((2, 2)), np.array([0, 5]), np.zeros((2, 2)))

    def test_rejects_non_2d_rss(self):
        with pytest.raises(ValueError):
            FingerprintDataset(np.zeros(6), np.zeros(6, dtype=int), np.zeros((1, 2)))

    def test_single_device_string_broadcasts(self):
        dataset = FingerprintDataset(
            np.zeros((3, 2)), np.zeros(3, dtype=int), np.zeros((1, 2)), devices="OP3"
        )
        assert list(dataset.devices) == ["OP3"] * 3

    def test_device_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            FingerprintDataset(
                np.zeros((3, 2)),
                np.zeros(3, dtype=int),
                np.zeros((1, 2)),
                devices=np.array(["A", "B"], dtype=object),
            )


class TestDatasetOperations:
    def test_positions_of_defaults_to_own_labels(self, small_dataset):
        positions = small_dataset.positions_of()
        assert positions.shape == (12, 2)
        np.testing.assert_allclose(positions[:3], np.zeros((3, 2)))

    def test_subset_preserves_classes(self, small_dataset):
        subset = small_dataset.subset(np.array([0, 1, 2]))
        assert subset.num_samples == 3
        assert subset.num_classes == 4

    def test_for_device(self, small_dataset):
        op3 = small_dataset.for_device("OP3")
        assert op3.num_samples == 6
        assert set(op3.devices) == {"OP3"}

    def test_shuffled_is_permutation(self, small_dataset, rng):
        shuffled = small_dataset.shuffled(rng)
        assert sorted(shuffled.labels.tolist()) == sorted(small_dataset.labels.tolist())

    def test_with_rss_replaces_measurements(self, small_dataset):
        new_rss = np.full_like(small_dataset.rss_dbm, -40.0)
        replaced = small_dataset.with_rss(new_rss)
        np.testing.assert_allclose(replaced.rss_dbm, -40.0)
        np.testing.assert_array_equal(replaced.labels, small_dataset.labels)

    def test_concatenate(self, small_dataset):
        combined = FingerprintDataset.concatenate([small_dataset, small_dataset])
        assert combined.num_samples == 24

    def test_concatenate_rejects_mismatched_aps(self, small_dataset):
        other = FingerprintDataset(
            np.zeros((2, 3)), np.zeros(2, dtype=int), small_dataset.rp_positions
        )
        with pytest.raises(ValueError):
            FingerprintDataset.concatenate([small_dataset, other])

    def test_concatenate_empty_raises(self):
        with pytest.raises(ValueError):
            FingerprintDataset.concatenate([])

    def test_class_counts(self, small_dataset):
        np.testing.assert_array_equal(small_dataset.class_counts(), [3, 3, 3, 3])

    def test_summary_mentions_building_and_devices(self, small_dataset):
        text = small_dataset.summary()
        assert "Test" in text and "OP3" in text
