"""Unit tests for the campaign simulator and CSV import/export."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    CampaignConfig,
    collect_campaign,
    collect_paper_campaigns,
    load_dataset_csv,
    save_dataset_csv,
)


class TestCampaignProtocol:
    def test_train_uses_training_device_only(self, tiny_campaign):
        assert set(tiny_campaign.train.devices) == {"OP3"}

    def test_train_has_five_scans_per_rp(self, tiny_campaign):
        counts = tiny_campaign.train.class_counts()
        assert (counts == 5).all()

    def test_test_has_one_scan_per_rp_per_device(self, tiny_campaign):
        for device, dataset in tiny_campaign.test_by_device.items():
            assert (dataset.class_counts() == 1).all()
            assert set(dataset.devices) == {device}

    def test_all_six_devices_have_test_data(self, tiny_campaign):
        assert sorted(tiny_campaign.test_by_device) == ["BLU", "HTC", "LG", "MOTO", "OP3", "S7"]

    def test_test_all_devices_concatenates(self, tiny_campaign):
        combined = tiny_campaign.test_all_devices()
        assert combined.num_samples == sum(
            d.num_samples for d in tiny_campaign.test_by_device.values()
        )

    def test_test_for_unknown_device_raises(self, tiny_campaign):
        with pytest.raises(KeyError):
            tiny_campaign.test_for("PIXEL")

    def test_summary_mentions_counts(self, tiny_campaign):
        text = tiny_campaign.summary()
        assert "train" in text and "OP3" in text

    def test_same_seed_reproducible(self, tiny_building):
        a = collect_campaign(tiny_building, CampaignConfig(seed=11))
        b = collect_campaign(tiny_building, CampaignConfig(seed=11))
        np.testing.assert_allclose(a.train.rss_dbm, b.train.rss_dbm)

    def test_different_seed_differs(self, tiny_building):
        a = collect_campaign(tiny_building, CampaignConfig(seed=11))
        b = collect_campaign(tiny_building, CampaignConfig(seed=12))
        assert not np.allclose(a.train.rss_dbm, b.train.rss_dbm)

    def test_invalid_config_raises(self, tiny_building):
        with pytest.raises(ValueError):
            collect_campaign(tiny_building, CampaignConfig(train_fingerprints_per_rp=0))
        with pytest.raises(KeyError):
            collect_campaign(tiny_building, CampaignConfig(training_device="PIXEL"))
        with pytest.raises(KeyError):
            collect_campaign(tiny_building, CampaignConfig(test_devices=("PIXEL",)))

    def test_custom_device_subset(self, tiny_building):
        campaign = collect_campaign(
            tiny_building, CampaignConfig(test_devices=("OP3", "S7"), seed=1)
        )
        assert sorted(campaign.test_by_device) == ["OP3", "S7"]

    def test_collect_paper_campaigns_subset(self):
        campaigns = collect_paper_campaigns(
            rp_granularity_m=4.0, buildings=("Building 3",)
        )
        assert list(campaigns) == ["Building 3"]
        assert campaigns["Building 3"].num_aps == 78

    def test_cross_device_heterogeneity_is_visible(self, tiny_campaign):
        """Device heterogeneity: different devices report different RSS for the
        same reference points, and MOTO's negative chipset bias (Table I)
        shows up as systematically weaker readings than OP3's."""
        op3 = tiny_campaign.test_for("OP3")
        moto = tiny_campaign.test_for("MOTO")
        np.testing.assert_array_equal(op3.labels, moto.labels)
        assert not np.allclose(op3.features, moto.features)
        detected = (op3.features > 0) & (moto.features > 0)
        assert moto.features[detected].mean() < op3.features[detected].mean()


class TestCsvRoundTrip:
    def test_round_trip_preserves_content(self, tiny_campaign, tmp_path):
        dataset = tiny_campaign.test_for("S7")
        path = save_dataset_csv(dataset, tmp_path / "s7.csv")
        loaded = load_dataset_csv(path)
        np.testing.assert_allclose(loaded.rss_dbm, dataset.rss_dbm, atol=0.01)
        np.testing.assert_array_equal(loaded.labels, dataset.labels)
        assert loaded.building == dataset.building
        assert list(loaded.devices) == list(dataset.devices)

    def test_round_trip_with_explicit_positions(self, tiny_campaign, tmp_path):
        dataset = tiny_campaign.train
        path = save_dataset_csv(dataset, tmp_path / "train.csv")
        loaded = load_dataset_csv(path, rp_positions=dataset.rp_positions)
        np.testing.assert_allclose(loaded.rp_positions, dataset.rp_positions)

    def test_loading_missing_column_raises(self, tmp_path):
        path = tmp_path / "broken.csv"
        path.write_text("AP000,AP001,RP\n-50,-60,0\n")
        with pytest.raises(ValueError):
            load_dataset_csv(path)

    def test_loading_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("AP000,RP,X,Y,DEVICE,BUILDING\n")
        with pytest.raises(ValueError):
            load_dataset_csv(path)
