"""Tests for the ``python -m repro`` reproduction CLI."""

from __future__ import annotations

import json

import pytest

from repro.eval import EvaluationConfig
from repro.reproduce import ARTEFACTS, build_parser, main, run_artefact


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.artefact == "all"
        assert args.profile == "quick"
        assert args.output_dir is None
        assert args.command is None

    def test_rejects_unknown_artefact(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--artefact", "fig99"])

    def test_artefact_subcommand_inherits_root_profile(self):
        args = build_parser().parse_args(["--profile", "full", "artefact", "fig6"])
        assert args.command == "artefact"
        assert args.names == ["fig6"]
        assert args.profile == "full"

    def test_artefact_subcommand_own_profile(self):
        args = build_parser().parse_args(["artefact", "table1", "--profile", "standard"])
        assert args.profile == "standard"

    def test_artefact_subcommand_rejects_unknown_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["artefact", "fig99"])

    def test_run_subcommand_flags(self):
        args = build_parser().parse_args(
            ["run", "--models", "CALLOC", "KNN", "--epsilons", "0.1", "0.3"]
        )
        assert args.command == "run"
        assert args.models == ["CALLOC", "KNN"]
        assert args.epsilons == [0.1, 0.3]

    def test_artefact_registry_covers_every_paper_artefact(self):
        assert set(ARTEFACTS) == {
            "table1",
            "table2",
            "table3",
            "fig1",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "ablation",
            "robustness",
        }


class TestExecution:
    def test_run_table_artefact_writes_output(self, tmp_path):
        text = run_artefact("table1", EvaluationConfig.quick(), tmp_path)
        assert "Oneplus" in text
        assert (tmp_path / "table1.txt").exists()

    def test_main_with_cheap_artefact(self, capsys, tmp_path):
        exit_code = main(["--artefact", "table3", "--output-dir", str(tmp_path)])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "table3" in captured.out
        assert (tmp_path / "table3.txt").exists()

    def test_artefact_subcommand_runs_multiple(self, capsys, tmp_path):
        exit_code = main(["artefact", "table1", "table3", "--output-dir", str(tmp_path)])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "Oneplus" in captured.out
        assert (tmp_path / "table1.txt").exists()
        assert (tmp_path / "table3.txt").exists()


class TestRegistrySubcommands:
    def test_list_models_enumerates_calloc_and_baselines(self, capsys):
        assert main(["list-models"]) == 0
        out = capsys.readouterr().out
        for name in ("CALLOC", "KNN", "GPC", "DNN", "AdvLoc", "SANGRIA", "ANVIL", "WiDeep"):
            assert name in out

    def test_list_models_tag_filter(self, capsys):
        assert main(["list-models", "--tag", "framework"]) == 0
        out = capsys.readouterr().out
        assert "CALLOC" in out
        assert "KNN" not in out

    def test_list_attacks(self, capsys):
        assert main(["list-attacks"]) == 0
        out = capsys.readouterr().out
        for name in ("FGSM", "PGD", "MIM", "MITM-manipulation", "MITM-spoofing"):
            assert name in out

    def test_list_scenarios_enumerates_every_family(self, capsys):
        assert main(["list-scenarios"]) == 0
        out = capsys.readouterr().out
        for name in (
            "clean",
            "drift",
            "ap-outage",
            "rogue-ap",
            "unseen-device",
            "adaptive-blackbox",
        ):
            assert name in out

    def test_list_scenarios_tag_filter(self, capsys):
        assert main(["list-scenarios", "--tag", "environment"]) == 0
        out = capsys.readouterr().out
        assert "drift" in out
        assert "unseen-device" not in out


class TestRunSubcommand:
    SPEC = {
        "profile": "quick",
        "models": ["KNN"],
        "devices": ["OP3"],
        "attack_methods": ["FGSM"],
        "epsilons": [0.3],
        "phi_percents": [50.0],
    }

    def test_run_with_spec_file(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(self.SPEC))
        out_dir = tmp_path / "out"
        exit_code = main(["run", "--spec", str(spec_path), "--output-dir", str(out_dir)])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "KNN" in out
        assert (out_dir / "results.csv").exists()
        assert (out_dir / "spec.json").exists()

    def test_run_with_model_flags(self, capsys):
        exit_code = main(
            [
                "run",
                "--models", "KNN",
                "--devices", "OP3",
                "--methods", "FGSM",
                "--epsilons", "0.3",
                "--phis", "50",
            ]
        )
        assert exit_code == 0
        assert "KNN" in capsys.readouterr().out

    def test_run_requires_spec_or_models(self):
        with pytest.raises(SystemExit):
            main(["run"])

    def test_run_rejects_spec_and_models_together(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(self.SPEC))
        with pytest.raises(SystemExit):
            main(["run", "--spec", str(spec_path), "--models", "KNN"])

    def test_run_rejects_spec_and_grid_flags_together(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(self.SPEC))
        with pytest.raises(SystemExit, match="--devices"):
            main(["run", "--spec", str(spec_path), "--devices", "S7"])
        with pytest.raises(SystemExit, match="--epsilons"):
            main(["run", "--spec", str(spec_path), "--epsilons", "0.5"])

    def test_run_reports_effective_profile(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(self.SPEC))
        assert main(["run", "--spec", str(spec_path)]) == 0
        assert "profile=quick" in capsys.readouterr().out

    def test_run_clean_error_for_unknown_model(self, capsys):
        with pytest.raises(SystemExit, match="did you mean"):
            main(["run", "--models", "KNNN"])

    def test_run_with_scenario_flags_skips_attack_sweep(self, capsys, tmp_path):
        out_dir = tmp_path / "out"
        exit_code = main(
            [
                "run",
                "--models", "KNN",
                "--devices", "OP3",
                "--scenario", "drift", "ap-outage",
                "--no-cache",
                "--output-dir", str(out_dir),
            ]
        )
        assert exit_code == 0
        assert "KNN" in capsys.readouterr().out
        rows = (out_dir / "results.csv").read_text().splitlines()
        header, body = rows[0].split(","), rows[1:]
        scenario_col = header.index("scenario")
        assert {line.split(",")[scenario_col] for line in body} == {
            "drift",
            "ap-outage",
        }

    def test_run_clean_error_for_unknown_scenario(self, capsys):
        with pytest.raises(SystemExit, match="scenario"):
            main(["run", "--models", "KNN", "--scenario", "earthquake"])

    def test_run_rejects_spec_and_scenario_together(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(self.SPEC))
        with pytest.raises(SystemExit, match="--scenario"):
            main(["run", "--spec", str(spec_path), "--scenario", "drift"])
