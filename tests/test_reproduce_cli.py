"""Tests for the ``python -m repro`` reproduction CLI."""

from __future__ import annotations

import json

import pytest

from repro.eval import EvaluationConfig
from repro.reproduce import ARTEFACTS, build_parser, main, run_artefact


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.artefact == "all"
        assert args.profile == "quick"
        assert args.output_dir is None
        assert args.command is None

    def test_rejects_unknown_artefact(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--artefact", "fig99"])

    def test_artefact_subcommand_inherits_root_profile(self):
        args = build_parser().parse_args(["--profile", "full", "artefact", "fig6"])
        assert args.command == "artefact"
        assert args.names == ["fig6"]
        assert args.profile == "full"

    def test_artefact_subcommand_own_profile(self):
        args = build_parser().parse_args(["artefact", "table1", "--profile", "standard"])
        assert args.profile == "standard"

    def test_artefact_subcommand_rejects_unknown_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["artefact", "fig99"])

    def test_run_subcommand_flags(self):
        args = build_parser().parse_args(
            ["run", "--models", "CALLOC", "KNN", "--epsilons", "0.1", "0.3"]
        )
        assert args.command == "run"
        assert args.models == ["CALLOC", "KNN"]
        assert args.epsilons == [0.1, 0.3]

    def test_artefact_registry_covers_every_paper_artefact(self):
        assert set(ARTEFACTS) == {
            "table1",
            "table2",
            "table3",
            "fig1",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "ablation",
            "robustness",
        }


class TestExecution:
    def test_run_table_artefact_writes_output(self, tmp_path):
        text = run_artefact("table1", EvaluationConfig.quick(), tmp_path)
        assert "Oneplus" in text
        assert (tmp_path / "table1.txt").exists()

    def test_main_with_cheap_artefact(self, capsys, tmp_path):
        exit_code = main(["--artefact", "table3", "--output-dir", str(tmp_path)])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "table3" in captured.out
        assert (tmp_path / "table3.txt").exists()

    def test_artefact_subcommand_runs_multiple(self, capsys, tmp_path):
        exit_code = main(["artefact", "table1", "table3", "--output-dir", str(tmp_path)])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "Oneplus" in captured.out
        assert (tmp_path / "table1.txt").exists()
        assert (tmp_path / "table3.txt").exists()


class TestRegistrySubcommands:
    def test_list_models_enumerates_calloc_and_baselines(self, capsys):
        assert main(["list-models"]) == 0
        out = capsys.readouterr().out
        for name in ("CALLOC", "KNN", "GPC", "DNN", "AdvLoc", "SANGRIA", "ANVIL", "WiDeep"):
            assert name in out

    def test_list_models_tag_filter(self, capsys):
        assert main(["list-models", "--tag", "framework"]) == 0
        out = capsys.readouterr().out
        assert "CALLOC" in out
        assert "KNN" not in out

    def test_list_attacks(self, capsys):
        assert main(["list-attacks"]) == 0
        out = capsys.readouterr().out
        for name in ("FGSM", "PGD", "MIM", "MITM-manipulation", "MITM-spoofing"):
            assert name in out

    def test_list_scenarios_enumerates_every_family(self, capsys):
        assert main(["list-scenarios"]) == 0
        out = capsys.readouterr().out
        for name in (
            "clean",
            "drift",
            "ap-outage",
            "rogue-ap",
            "unseen-device",
            "adaptive-blackbox",
        ):
            assert name in out

    def test_list_scenarios_tag_filter(self, capsys):
        assert main(["list-scenarios", "--tag", "environment"]) == 0
        out = capsys.readouterr().out
        assert "drift" in out
        assert "unseen-device" not in out

    @pytest.mark.parametrize(
        "command,kind,expected",
        [
            ("list-models", "model", "CALLOC"),
            ("list-attacks", "attack", "FGSM"),
            ("list-scenarios", "scenario", "drift"),
        ],
    )
    def test_list_json_emits_shared_catalog_format(self, capsys, command, kind, expected):
        assert main([command, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["kind"] == kind
        assert document["count"] == len(document["entries"]) > 0
        names = [entry["name"] for entry in document["entries"]]
        assert expected in names
        for entry in document["entries"]:
            assert {"name", "tags", "summary", "aliases"} <= set(entry)

    def test_list_json_respects_tag_filter(self, capsys):
        assert main(["list-models", "--json", "--tag", "framework"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert [entry["name"] for entry in document["entries"]] == ["CALLOC"]


class TestStoreSubcommand:
    def _publish(self, store_dir, tiny_campaign, name="knn", tags=("prod",)):
        from repro.api import LocalizationService
        from repro.serve import ModelStore

        service = LocalizationService("KNN", params={"k": 3}).fit(tiny_campaign.train)
        return ModelStore(store_dir).publish(service, name, tags=tags)

    def test_store_list_and_inspect(self, capsys, tmp_path, tiny_campaign):
        self._publish(tmp_path, tiny_campaign)
        assert main(["store", "--store", str(tmp_path), "list"]) == 0
        out = capsys.readouterr().out
        assert "knn" in out and "prod" in out
        assert main(["store", "--store", str(tmp_path), "inspect", "knn@prod"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["ref"] == "knn@v1"
        assert document["model"] == "KNN"

    def test_store_list_json(self, capsys, tmp_path, tiny_campaign):
        self._publish(tmp_path, tiny_campaign)
        assert main(["store", "--store", str(tmp_path), "list", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["kind"] == "served-model"
        assert document["entries"][0]["name"] == "knn"

    def test_store_promote_and_export(self, capsys, tmp_path, tiny_campaign):
        self._publish(tmp_path / "store", tiny_campaign)
        assert main(
            ["store", "--store", str(tmp_path / "store"), "promote", "knn@v1", "canary"]
        ) == 0
        assert "canary" in capsys.readouterr().out
        destination = tmp_path / "exported.npz"
        assert main(
            [
                "store", "--store", str(tmp_path / "store"),
                "export", "knn@canary", str(destination),
            ]
        ) == 0
        assert destination.exists()

    def test_store_unknown_ref_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown model"):
            main(["store", "--store", str(tmp_path), "inspect", "ghost"])


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.port == 8080
        assert args.max_batch == 64
        assert not args.no_batching

    def test_serve_route_flags(self):
        args = build_parser().parse_args(
            ["serve", "--route", "b1/knn=knn@prod", "--route", "b2/knn=knn@v2"]
        )
        assert args.route == ["b1/knn=knn@prod", "b2/knn=knn@v2"]


class TestRunSubcommand:
    SPEC = {
        "profile": "quick",
        "models": ["KNN"],
        "devices": ["OP3"],
        "attack_methods": ["FGSM"],
        "epsilons": [0.3],
        "phi_percents": [50.0],
    }

    def test_run_with_spec_file(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(self.SPEC))
        out_dir = tmp_path / "out"
        exit_code = main(["run", "--spec", str(spec_path), "--output-dir", str(out_dir)])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "KNN" in out
        assert (out_dir / "results.csv").exists()
        assert (out_dir / "spec.json").exists()

    def test_run_with_model_flags(self, capsys):
        exit_code = main(
            [
                "run",
                "--models", "KNN",
                "--devices", "OP3",
                "--methods", "FGSM",
                "--epsilons", "0.3",
                "--phis", "50",
            ]
        )
        assert exit_code == 0
        assert "KNN" in capsys.readouterr().out

    def test_run_requires_spec_or_models(self):
        with pytest.raises(SystemExit):
            main(["run"])

    def test_run_rejects_spec_and_models_together(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(self.SPEC))
        with pytest.raises(SystemExit):
            main(["run", "--spec", str(spec_path), "--models", "KNN"])

    def test_run_rejects_spec_and_grid_flags_together(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(self.SPEC))
        with pytest.raises(SystemExit, match="--devices"):
            main(["run", "--spec", str(spec_path), "--devices", "S7"])
        with pytest.raises(SystemExit, match="--epsilons"):
            main(["run", "--spec", str(spec_path), "--epsilons", "0.5"])

    def test_run_reports_effective_profile(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(self.SPEC))
        assert main(["run", "--spec", str(spec_path)]) == 0
        assert "profile=quick" in capsys.readouterr().out

    def test_run_clean_error_for_unknown_model(self, capsys):
        with pytest.raises(SystemExit, match="did you mean"):
            main(["run", "--models", "KNNN"])

    def test_run_with_scenario_flags_skips_attack_sweep(self, capsys, tmp_path):
        out_dir = tmp_path / "out"
        exit_code = main(
            [
                "run",
                "--models", "KNN",
                "--devices", "OP3",
                "--scenario", "drift", "ap-outage",
                "--no-cache",
                "--output-dir", str(out_dir),
            ]
        )
        assert exit_code == 0
        assert "KNN" in capsys.readouterr().out
        rows = (out_dir / "results.csv").read_text().splitlines()
        header, body = rows[0].split(","), rows[1:]
        scenario_col = header.index("scenario")
        assert {line.split(",")[scenario_col] for line in body} == {
            "drift",
            "ap-outage",
        }

    def test_run_clean_error_for_unknown_scenario(self, capsys):
        with pytest.raises(SystemExit, match="scenario"):
            main(["run", "--models", "KNN", "--scenario", "earthquake"])

    def test_run_rejects_spec_and_scenario_together(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(self.SPEC))
        with pytest.raises(SystemExit, match="--scenario"):
            main(["run", "--spec", str(spec_path), "--scenario", "drift"])

    def test_run_dry_run_prints_plan_without_executing(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(self.SPEC))
        out_dir = tmp_path / "out"
        exit_code = main(
            ["run", "--spec", str(spec_path), "--dry-run", "--output-dir", str(out_dir)]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "dry run" in out
        # KNN on one building/device: 1 campaign, 1 train, 1 eval unit.
        assert "1 campaign / 1 train / 1 eval / 0 scenario units" in out
        assert "total" in out
        assert not out_dir.exists()  # nothing ran, nothing written


class TestQueueCommand:
    SPEC = TestRunSubcommand.SPEC

    def _submit(self, tmp_path, capsys) -> str:
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(self.SPEC))
        assert (
            main(
                ["queue", "submit", str(spec_path), "--cache-dir", str(tmp_path / "c")]
            )
            == 0
        )
        out = capsys.readouterr().out
        run_id = out.splitlines()[0].strip()
        assert run_id.startswith("run-")
        assert "submitted 3 units" in out
        return run_id

    def test_submit_work_status_result(self, capsys, tmp_path):
        run_id = self._submit(tmp_path, capsys)
        cache_flag = ["--cache-dir", str(tmp_path / "c")]

        assert main(["queue", "work", run_id, "--poll", "0.01"] + cache_flag) == 0
        assert "run complete" in capsys.readouterr().out

        assert main(["queue", "status", run_id, "--json"] + cache_flag) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["complete"] and status["succeeded"]
        assert status["units_done"] == 3

        out_dir = tmp_path / "out"
        assert (
            main(["queue", "result", run_id, "--output-dir", str(out_dir)] + cache_flag)
            == 0
        )
        assert "1 record(s)" in capsys.readouterr().out
        assert (out_dir / "results.csv").exists()
        assert (out_dir / "spec.json").exists()

        assert main(["queue", "list"] + cache_flag) == 0
        assert run_id in capsys.readouterr().out

    def test_resubmit_errors_cleanly(self, capsys, tmp_path):
        run_id = self._submit(tmp_path, capsys)
        spec_path = tmp_path / "spec.json"
        with pytest.raises(SystemExit, match="already exists"):
            main(
                ["queue", "submit", str(spec_path), "--cache-dir", str(tmp_path / "c")]
            )
        # ... unless a fresh run id forks it explicitly.
        assert (
            main(
                [
                    "queue", "submit", str(spec_path),
                    "--run-id", "fork-1",
                    "--cache-dir", str(tmp_path / "c"),
                ]
            )
            == 0
        )
        assert capsys.readouterr().out.splitlines()[0] == "fork-1"
        assert run_id != "fork-1"

    def test_unknown_run_errors_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="no run"):
            main(
                ["queue", "status", "run-missing", "--cache-dir", str(tmp_path / "c")]
            )

    def test_result_before_completion(self, capsys, tmp_path):
        run_id = self._submit(tmp_path, capsys)
        cache_flag = ["--cache-dir", str(tmp_path / "c")]
        with pytest.raises(SystemExit, match="no result"):
            main(["queue", "result", run_id] + cache_flag)
        assert main(["queue", "result", run_id, "--allow-partial"] + cache_flag) == 0
        assert "0 record(s)" in capsys.readouterr().out
