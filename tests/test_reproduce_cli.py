"""Tests for the ``python -m repro`` reproduction CLI."""

from __future__ import annotations

import pytest

from repro.eval import EvaluationConfig
from repro.reproduce import ARTEFACTS, build_parser, main, run_artefact


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.artefact == "all"
        assert args.profile == "quick"
        assert args.output_dir is None

    def test_rejects_unknown_artefact(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--artefact", "fig99"])

    def test_artefact_registry_covers_every_paper_artefact(self):
        assert set(ARTEFACTS) == {
            "table1",
            "table2",
            "table3",
            "fig1",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "ablation",
        }


class TestExecution:
    def test_run_table_artefact_writes_output(self, tmp_path):
        text = run_artefact("table1", EvaluationConfig.quick(), tmp_path)
        assert "Oneplus" in text
        assert (tmp_path / "table1.txt").exists()

    def test_main_with_cheap_artefact(self, capsys, tmp_path):
        exit_code = main(["--artefact", "table3", "--output-dir", str(tmp_path)])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "table3" in captured.out
        assert (tmp_path / "table3.txt").exists()
