"""Unit tests for weight serialization and model introspection helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Linear,
    ReLU,
    Sequential,
    Tensor,
    count_parameters,
    load_module,
    load_state_dict,
    model_size_bytes,
    model_size_kilobytes,
    parameter_breakdown,
    save_module,
    save_state_dict,
    seed_everything,
)


class TestSerialization:
    def test_round_trip_module(self, tmp_path):
        source = Sequential(Linear(4, 8, rng=np.random.default_rng(0)), ReLU(), Linear(8, 2))
        path = save_module(source, tmp_path / "weights.npz")
        target = Sequential(Linear(4, 8, rng=np.random.default_rng(9)), ReLU(), Linear(8, 2))
        load_module(target, path)
        x = Tensor(np.random.default_rng(1).normal(size=(3, 4)))
        np.testing.assert_allclose(source(x).data, target(x).data)

    def test_round_trip_state_dict(self, tmp_path):
        state = {"a": np.arange(6.0).reshape(2, 3), "b": np.zeros(4)}
        path = save_state_dict(state, tmp_path / "state")
        loaded = load_state_dict(path)
        assert set(loaded) == {"a", "b"}
        np.testing.assert_allclose(loaded["a"], state["a"])

    def test_load_without_npz_suffix(self, tmp_path):
        save_state_dict({"x": np.ones(3)}, tmp_path / "model")
        loaded = load_state_dict(tmp_path / "model")
        np.testing.assert_allclose(loaded["x"], np.ones(3))

    def test_creates_parent_directories(self, tmp_path):
        path = save_state_dict({"x": np.ones(1)}, tmp_path / "deep" / "nested" / "w.npz")
        assert path.exists()


class TestUtils:
    def test_count_parameters(self):
        net = Sequential(Linear(10, 5), Linear(5, 2))
        assert count_parameters(net) == (10 * 5 + 5) + (5 * 2 + 2)

    def test_parameter_breakdown_covers_all_parameters(self):
        net = Sequential(Linear(4, 4), ReLU(), Linear(4, 2))
        breakdown = parameter_breakdown(net)
        assert sum(breakdown.values()) == count_parameters(net)

    def test_model_size(self):
        net = Sequential(Linear(10, 10))
        assert model_size_bytes(net) == count_parameters(net) * 4
        assert model_size_kilobytes(net) == pytest.approx(count_parameters(net) * 4 / 1000)

    def test_seed_everything_is_reproducible(self):
        a = seed_everything(123).normal(size=5)
        b = seed_everything(123).normal(size=5)
        np.testing.assert_allclose(a, b)
