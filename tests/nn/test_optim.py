"""Unit tests for SGD and Adam optimizers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import SGD, Adam, CrossEntropyLoss, Linear, MSELoss, Parameter, ReLU, Sequential, Tensor


def quadratic_step(optimizer_cls, steps=200, **kwargs):
    """Minimise ||w - 3||^2 and return the final parameter value."""
    param = Parameter(np.array([10.0]))
    optimizer = optimizer_cls([param], **kwargs)
    for _ in range(steps):
        optimizer.zero_grad()
        loss = ((param - 3.0) * (param - 3.0)).sum()
        loss.backward()
        optimizer.step()
    return float(param.data[0])


class TestSGD:
    def test_converges_on_quadratic(self):
        assert quadratic_step(SGD, lr=0.1) == pytest.approx(3.0, abs=1e-3)

    def test_momentum_converges(self):
        assert quadratic_step(SGD, lr=0.05, momentum=0.9) == pytest.approx(3.0, abs=1e-3)

    def test_weight_decay_shrinks_parameters(self):
        param = Parameter(np.array([1.0]))
        optimizer = SGD([param], lr=0.1, weight_decay=1.0)
        optimizer.zero_grad()
        (param * 0.0).sum().backward()
        optimizer.step()
        assert param.data[0] < 1.0

    def test_skips_parameters_without_gradient(self):
        param = Parameter(np.array([2.0]))
        SGD([param], lr=0.1).step()
        assert param.data[0] == pytest.approx(2.0)

    def test_rejects_bad_hyperparameters(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.5)

    def test_rejects_empty_parameter_list(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        assert quadratic_step(Adam, lr=0.3) == pytest.approx(3.0, abs=1e-2)

    def test_rejects_bad_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], betas=(1.0, 0.999))

    def test_zero_grad_resets_gradients(self):
        param = Parameter(np.array([1.0]))
        optimizer = Adam([param])
        (param * 2).sum().backward()
        optimizer.zero_grad()
        assert param.grad is None

    def test_trains_classifier_to_fit_small_dataset(self):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(60, 4))
        labels = (features[:, 0] + features[:, 1] > 0).astype(int)
        net = Sequential(Linear(4, 16, rng=rng), ReLU(), Linear(16, 2, rng=rng))
        optimizer = Adam(net.parameters(), lr=0.01)
        loss_fn = CrossEntropyLoss()
        first_loss = None
        for _ in range(150):
            optimizer.zero_grad()
            loss = loss_fn(net(Tensor(features)), labels)
            if first_loss is None:
                first_loss = loss.item()
            loss.backward()
            optimizer.step()
        predictions = net(Tensor(features)).data.argmax(axis=1)
        assert (predictions == labels).mean() > 0.9
        assert loss.item() < first_loss

    def test_regression_converges(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(50, 3))
        target = x @ np.array([[1.0], [-2.0], [0.5]])
        layer = Linear(3, 1, rng=rng)
        optimizer = Adam(layer.parameters(), lr=0.05)
        for _ in range(300):
            optimizer.zero_grad()
            loss = MSELoss()(layer(Tensor(x)), target)
            loss.backward()
            optimizer.step()
        assert loss.item() < 1e-3

    def test_weight_decay_applies(self):
        param = Parameter(np.array([5.0]))
        optimizer = Adam([param], lr=0.1, weight_decay=0.5)
        optimizer.zero_grad()
        (param * 0.0).sum().backward()
        optimizer.step()
        assert param.data[0] < 5.0
