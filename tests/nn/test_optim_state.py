"""Tests for position-keyed optimizer state and its state_dict round-trip.

The regression under test: SGD/Adam used to key momentum/moment buffers by
``id(param)``, so replacing a parameter object in place silently kept (or,
after GC id reuse, cross-wired) stale state.  State is now keyed by parameter
position and serializable, so trainer checkpoints can resume mid-schedule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import SGD, Adam, Parameter


def make_params(values=(4.0, -2.0)):
    return [Parameter(np.array([value])) for value in values]


def set_grads(params, grads):
    for param, grad in zip(params, grads):
        param.grad = np.array([grad])


class TestPositionKeying:
    def test_sgd_state_follows_position_after_parameter_replacement(self):
        params = make_params()
        optimizer = SGD(params, lr=0.1, momentum=0.9)
        set_grads(params, (1.0, 1.0))
        optimizer.step()
        velocity_before = [v.copy() for v in optimizer._velocity]
        # Replace the object at position 0 (e.g. a layer rebuilt in place);
        # id() changes, position does not — the momentum buffer must carry on.
        replacement = Parameter(params[0].data.copy())
        optimizer.parameters[0] = replacement
        set_grads(optimizer.parameters, (1.0, 1.0))
        optimizer.step()
        expected = 0.9 * velocity_before[0] + 1.0
        np.testing.assert_allclose(optimizer._velocity[0], expected)

    def test_adam_moments_follow_position(self):
        params = make_params()
        optimizer = Adam(params, lr=0.01)
        set_grads(params, (1.0, -1.0))
        optimizer.step()
        first_before = optimizer._first_moment[1].copy()
        optimizer.parameters[1] = Parameter(params[1].data.copy())
        set_grads(optimizer.parameters, (1.0, -1.0))
        optimizer.step()
        np.testing.assert_allclose(
            optimizer._first_moment[1], 0.9 * first_before + 0.1 * -1.0
        )


class TestStateDictRoundTrip:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda params: SGD(params, lr=0.1, momentum=0.9),
            lambda params: Adam(params, lr=0.05),
        ],
        ids=["sgd", "adam"],
    )
    def test_checkpoint_resume_matches_uninterrupted_run(self, factory):
        rng = np.random.default_rng(0)
        grads = rng.normal(size=(6, 2))

        def run(steps, optimizer, params):
            for step in range(steps):
                set_grads(params, grads[step])
                optimizer.step()

        # Uninterrupted reference run.
        ref_params = make_params()
        ref_optimizer = factory(ref_params)
        run(6, ref_optimizer, ref_params)

        # Run 3 steps, checkpoint, rebuild, restore, run the remaining 3.
        params = make_params()
        optimizer = factory(params)
        run(3, optimizer, params)
        state = optimizer.state_dict()
        resumed_params = [Parameter(p.data.copy()) for p in params]
        resumed = factory(resumed_params)
        resumed.load_state_dict(state)
        for step in range(3, 6):
            set_grads(resumed_params, grads[step])
            resumed.step()
        for ref, res in zip(ref_params, resumed_params):
            np.testing.assert_allclose(res.data, ref.data, rtol=1e-12)

    def test_sgd_resume_without_restore_diverges(self):
        # Sanity check that the round-trip test above is actually sensitive:
        # dropping the momentum buffers changes the trajectory.
        params_a = make_params()
        optimizer_a = SGD(params_a, lr=0.1, momentum=0.9)
        params_b = make_params()
        optimizer_b = SGD(params_b, lr=0.1, momentum=0.9)
        for optimizer, params in ((optimizer_a, params_a), (optimizer_b, params_b)):
            set_grads(params, (1.0, 1.0))
            optimizer.step()
        fresh = SGD(params_b, lr=0.1, momentum=0.9)  # no state restored
        set_grads(params_a, (1.0, 1.0))
        optimizer_a.step()
        set_grads(params_b, (1.0, 1.0))
        fresh.step()
        assert not np.allclose(params_a[0].data, params_b[0].data)

    def test_load_rejects_wrong_buffer_count(self):
        optimizer = SGD(make_params(), lr=0.1, momentum=0.9)
        with pytest.raises(ValueError, match="buffers"):
            optimizer.load_state_dict({"velocity": [np.zeros(1)]})

    def test_load_rejects_wrong_buffer_shape(self):
        params = make_params()
        optimizer = Adam(params, lr=0.1)
        state = {
            "step_count": 1,
            "first_moment": [np.zeros(3), np.zeros(1)],
            "second_moment": [np.zeros(1), np.zeros(1)],
        }
        with pytest.raises(ValueError, match="shape"):
            optimizer.load_state_dict(state)

    def test_fresh_optimizer_state_dict_round_trips(self):
        optimizer = Adam(make_params(), lr=0.1)
        state = optimizer.state_dict()
        assert state["step_count"] == 0
        optimizer.load_state_dict(state)
        assert optimizer._first_moment == [None, None]
