"""Unit tests for scaled dot-product and multi-head attention."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import MultiHeadAttention, ScaledDotProductAttention, Tensor, attention_scores


class TestAttentionScores:
    def test_weights_sum_to_one(self):
        rng = np.random.default_rng(0)
        weights = attention_scores(Tensor(rng.normal(size=(4, 8))), Tensor(rng.normal(size=(6, 8))))
        np.testing.assert_allclose(weights.data.sum(axis=-1), np.ones(4))

    def test_rejects_mismatched_dimensions(self):
        with pytest.raises(ValueError):
            attention_scores(Tensor(np.zeros((2, 4))), Tensor(np.zeros((2, 5))))

    def test_scale_default_is_inverse_sqrt_dk(self):
        query = Tensor(np.ones((1, 16)))
        key = Tensor(np.concatenate([np.ones((1, 16)), np.zeros((1, 16))]))
        weights_default = attention_scores(query, key).data
        weights_manual = attention_scores(query, key, scale=1.0 / 4.0).data
        np.testing.assert_allclose(weights_default, weights_manual)

    def test_identical_query_key_prefers_matching_entry(self):
        rng = np.random.default_rng(1)
        keys = rng.normal(size=(5, 8)) * 3
        weights = attention_scores(Tensor(keys[2:3]), Tensor(keys)).data
        assert weights[0].argmax() == 2

    def test_bias_shifts_attention(self):
        rng = np.random.default_rng(2)
        query = Tensor(rng.normal(size=(1, 4)))
        key = Tensor(rng.normal(size=(3, 4)))
        bias = np.zeros((1, 3))
        bias[0, 1] = 50.0
        weights = attention_scores(query, key, bias=Tensor(bias)).data
        assert weights[0].argmax() == 1
        assert weights[0, 1] > 0.99


class TestScaledDotProductAttention:
    def test_output_shape(self):
        rng = np.random.default_rng(0)
        attention = ScaledDotProductAttention()
        out = attention(
            Tensor(rng.normal(size=(4, 8))),
            Tensor(rng.normal(size=(6, 8))),
            Tensor(rng.normal(size=(6, 3))),
        )
        assert out.shape == (4, 3)

    def test_stores_last_weights(self):
        rng = np.random.default_rng(0)
        attention = ScaledDotProductAttention()
        assert attention.last_attention_weights is None
        attention(
            Tensor(rng.normal(size=(2, 4))),
            Tensor(rng.normal(size=(5, 4))),
            Tensor(rng.normal(size=(5, 2))),
        )
        assert attention.last_attention_weights.shape == (2, 5)

    def test_has_no_trainable_parameters(self):
        assert ScaledDotProductAttention().parameters() == []

    def test_gradient_flows_to_query(self):
        rng = np.random.default_rng(0)
        query = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        out = ScaledDotProductAttention()(
            query, Tensor(rng.normal(size=(5, 4))), Tensor(rng.normal(size=(5, 2)))
        )
        out.sum().backward()
        assert query.grad is not None and np.abs(query.grad).sum() > 0

    def test_uniform_value_rows_give_that_value(self):
        rng = np.random.default_rng(0)
        value = np.tile(np.array([[2.0, -1.0]]), (4, 1))
        out = ScaledDotProductAttention()(
            Tensor(rng.normal(size=(3, 6))),
            Tensor(rng.normal(size=(4, 6))),
            Tensor(value),
        )
        np.testing.assert_allclose(out.data, np.tile([[2.0, -1.0]], (3, 1)), atol=1e-9)


class TestMultiHeadAttention:
    def test_output_shape_matches_input(self):
        rng = np.random.default_rng(0)
        mha = MultiHeadAttention(16, 4, rng=rng)
        out = mha(Tensor(rng.normal(size=(2, 5, 16))))
        assert out.shape == (2, 5, 16)

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3)

    def test_parameter_count(self):
        mha = MultiHeadAttention(8, 2)
        # Four projections of 8x8 plus biases.
        assert mha.num_parameters() == 4 * (8 * 8 + 8)

    def test_gradients_reach_inputs(self):
        rng = np.random.default_rng(0)
        mha = MultiHeadAttention(8, 2, rng=rng)
        x = Tensor(rng.normal(size=(2, 3, 8)), requires_grad=True)
        mha(x).sum().backward()
        assert x.grad.shape == (2, 3, 8)

    def test_cross_attention_accepts_distinct_key_value(self):
        rng = np.random.default_rng(0)
        mha = MultiHeadAttention(8, 2, rng=rng)
        query = Tensor(rng.normal(size=(1, 2, 8)))
        memory = Tensor(rng.normal(size=(1, 6, 8)))
        assert mha(query, memory, memory).shape == (1, 2, 8)
