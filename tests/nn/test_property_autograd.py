"""Property-based tests (hypothesis) for the autograd engine."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import Tensor

finite_floats = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False)


def small_arrays(max_dims=2, max_side=5):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=1, max_dims=max_dims, min_side=1, max_side=max_side),
        elements=finite_floats,
    )


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_addition_gradient_is_ones(data):
    tensor = Tensor(data.copy(), requires_grad=True)
    (tensor + 1.0).sum().backward()
    np.testing.assert_allclose(tensor.grad, np.ones_like(data))


@settings(max_examples=40, deadline=None)
@given(small_arrays(), st.floats(min_value=-3.0, max_value=3.0, allow_nan=False))
def test_scalar_multiplication_gradient(data, scalar):
    tensor = Tensor(data.copy(), requires_grad=True)
    (tensor * scalar).sum().backward()
    np.testing.assert_allclose(tensor.grad, np.full_like(data, scalar))


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_sum_then_mean_consistency(data):
    tensor = Tensor(data.copy())
    np.testing.assert_allclose(tensor.mean().item(), data.mean(), atol=1e-10)
    np.testing.assert_allclose(tensor.sum().item(), data.sum(), atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(arrays(dtype=np.float64, shape=(4, 6), elements=finite_floats))
def test_softmax_is_a_probability_distribution(data):
    probs = Tensor(data).softmax(axis=-1).data
    assert (probs >= 0).all()
    np.testing.assert_allclose(probs.sum(axis=-1), np.ones(4), atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(arrays(dtype=np.float64, shape=(3, 4), elements=finite_floats))
def test_relu_output_is_non_negative_and_gradient_binary(data):
    tensor = Tensor(data.copy(), requires_grad=True)
    out = tensor.relu()
    assert (out.data >= 0).all()
    out.sum().backward()
    assert set(np.unique(tensor.grad)).issubset({0.0, 1.0})


@settings(max_examples=40, deadline=None)
@given(arrays(dtype=np.float64, shape=(5,), elements=finite_floats))
def test_clip_respects_bounds(data):
    clipped = Tensor(data).clip(-1.0, 1.0).data
    assert clipped.min() >= -1.0 and clipped.max() <= 1.0


@settings(max_examples=30, deadline=None)
@given(
    arrays(dtype=np.float64, shape=(3, 4), elements=finite_floats),
    arrays(dtype=np.float64, shape=(4, 2), elements=finite_floats),
)
def test_matmul_matches_numpy(a, b):
    np.testing.assert_allclose(Tensor(a).matmul(Tensor(b)).data, a @ b, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(arrays(dtype=np.float64, shape=(2, 3), elements=finite_floats))
def test_transpose_involution(data):
    tensor = Tensor(data)
    np.testing.assert_allclose(tensor.transpose().transpose().data, data)
