"""Property-based gradient checks: finite differences vs autograd.

Every ``Tensor`` operation and every layer used by CALLOC and the baselines
is checked against a central finite-difference approximation of its gradient
over *random shapes* (including broadcasting shape pairs).  The scalar
objective is a random linear projection of the op's output, so asymmetric
gradient bugs (e.g. summing over the wrong broadcast axis) cannot cancel out
the way they could under a plain ``.sum()``.

These tests complement ``test_property_autograd.py``: that file checks
algebraic identities of forward values, this one checks every backward rule
numerically — which is what catches broadcasting-gradient bugs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import (
    Conv1d,
    CrossEntropyLoss,
    LayerNorm,
    Linear,
    MaxPool1d,
    MSELoss,
    Sequential,
    Tanh,
    Tensor,
)
from repro.nn.attention import ScaledDotProductAttention
from repro.nn.layers import Embedding, Module

EPS = 1e-6

moderate_floats = st.floats(
    min_value=-4.0, max_value=4.0, allow_nan=False, allow_infinity=False
)


def small_arrays(min_dims=1, max_dims=3, max_side=4, elements=moderate_floats):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(
            min_dims=min_dims, max_dims=max_dims, min_side=1, max_side=max_side
        ),
        elements=elements,
    )


@st.composite
def broadcast_pairs(draw, max_dims=3, max_side=3):
    """Two arrays whose shapes broadcast together but generally differ.

    The second operand randomly drops leading axes and collapses surviving
    axes to size one — exactly the shape relationships whose backward pass
    must un-broadcast gradients correctly.
    """
    shape = draw(
        array_shapes(min_dims=1, max_dims=max_dims, min_side=1, max_side=max_side)
    )
    drop = draw(st.integers(min_value=0, max_value=len(shape)))
    other_shape = tuple(
        1 if draw(st.booleans()) else side for side in shape[drop:]
    )
    first = draw(arrays(dtype=np.float64, shape=shape, elements=moderate_floats))
    second = draw(
        arrays(dtype=np.float64, shape=other_shape, elements=moderate_floats)
    )
    return first, second


# ----------------------------------------------------------------------
# The checker
# ----------------------------------------------------------------------
def _projection(shape, seed=0):
    return np.random.default_rng(seed).standard_normal(shape)


def gradcheck(fn, *arrays, atol=1e-4, rtol=1e-3):
    """Compare autograd gradients of ``fn(*arrays)`` to central differences.

    ``fn`` maps :class:`Tensor` inputs to one output tensor; the objective is
    ``(fn(...) * W).sum()`` for a fixed random projection ``W``.
    """
    arrays = [np.asarray(a, dtype=np.float64) for a in arrays]
    tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    output = fn(*tensors)
    weights = _projection(output.shape)
    (output * Tensor(weights)).sum().backward()

    def objective(values):
        result = fn(*[Tensor(v) for v in values])
        return float((result.data * weights).sum())

    for index, array in enumerate(arrays):
        analytic = tensors[index].grad
        assert analytic is not None, f"input {index} received no gradient"
        perturbed = [a.copy() for a in arrays]
        flat = perturbed[index].reshape(-1)
        numeric = np.zeros_like(flat)
        for position in range(flat.size):
            original = flat[position]
            flat[position] = original + EPS
            upper = objective(perturbed)
            flat[position] = original - EPS
            lower = objective(perturbed)
            flat[position] = original
            numeric[position] = (upper - lower) / (2.0 * EPS)
        np.testing.assert_allclose(
            analytic.reshape(-1),
            numeric,
            atol=atol,
            rtol=rtol,
            err_msg=f"gradient mismatch for input {index} of {fn}",
        )


def module_gradcheck(module: Module, *arrays, atol=1e-4, rtol=1e-3):
    """Gradient-check a module w.r.t. its inputs *and* every parameter."""
    module.eval()  # freeze dropout / noise layers so the map is deterministic
    arrays = [np.asarray(a, dtype=np.float64) for a in arrays]
    tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    output = module(*tensors)
    weights = _projection(output.shape)
    module.zero_grad()
    (output * Tensor(weights)).sum().backward()

    def objective():
        return float((module(*[Tensor(a) for a in arrays]).data * weights).sum())

    # Inputs.
    for index, array in enumerate(arrays):
        analytic = tensors[index].grad
        assert analytic is not None
        flat = array.reshape(-1)
        numeric = np.zeros_like(flat)
        saved = arrays[index]
        for position in range(flat.size):
            original = flat[position]
            flat[position] = original + EPS
            upper = objective()
            flat[position] = original - EPS
            lower = objective()
            flat[position] = original
            numeric[position] = (upper - lower) / (2.0 * EPS)
        np.testing.assert_allclose(
            analytic.reshape(-1), numeric, atol=atol, rtol=rtol,
            err_msg=f"input {index} gradient mismatch for {type(module).__name__}",
        )
        arrays[index] = saved
    # Parameters (perturbed in place).
    for name, param in module.named_parameters():
        analytic = param.grad
        assert analytic is not None, f"parameter {name} received no gradient"
        flat = param.data.reshape(-1)
        numeric = np.zeros_like(flat)
        for position in range(flat.size):
            original = flat[position]
            flat[position] = original + EPS
            upper = objective()
            flat[position] = original - EPS
            lower = objective()
            flat[position] = original
            numeric[position] = (upper - lower) / (2.0 * EPS)
        np.testing.assert_allclose(
            analytic.reshape(-1), numeric, atol=atol, rtol=rtol,
            err_msg=f"parameter {name} gradient mismatch for {type(module).__name__}",
        )


def _away_from(values: np.ndarray, points, margin=1e-3) -> bool:
    """True when every value keeps ``margin`` distance from every kink point."""
    values = np.asarray(values)
    return all(np.abs(values - p).min() > margin for p in points) if values.size else True


# ----------------------------------------------------------------------
# Arithmetic with broadcasting
# ----------------------------------------------------------------------
class TestBroadcastArithmetic:
    @settings(max_examples=25, deadline=None)
    @given(broadcast_pairs())
    def test_add(self, pair):
        a, b = pair
        gradcheck(lambda x, y: x + y, a, b)

    @settings(max_examples=25, deadline=None)
    @given(broadcast_pairs())
    def test_sub(self, pair):
        a, b = pair
        gradcheck(lambda x, y: x - y, a, b)

    @settings(max_examples=25, deadline=None)
    @given(broadcast_pairs())
    def test_mul(self, pair):
        a, b = pair
        gradcheck(lambda x, y: x * y, a, b)

    @settings(max_examples=25, deadline=None)
    @given(broadcast_pairs())
    def test_div(self, pair):
        a, b = pair
        assume(np.abs(b).min() > 0.3)
        gradcheck(lambda x, y: x / y, a, b, atol=1e-3, rtol=1e-2)

    @settings(max_examples=20, deadline=None)
    @given(small_arrays(), st.sampled_from([2.0, 3.0, 0.5, -1.0]))
    def test_pow(self, data, exponent):
        positive = np.abs(data) + 0.5  # keep the base away from 0
        gradcheck(lambda x: x ** exponent, positive, atol=1e-3, rtol=1e-2)

    @settings(max_examples=15, deadline=None)
    @given(small_arrays())
    def test_neg_and_scalar_ops(self, data):
        gradcheck(lambda x: 2.5 - (-x) / 2.0 + x * 0.75, data)


# ----------------------------------------------------------------------
# Linear algebra
# ----------------------------------------------------------------------
class TestMatmul:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(1, 3), st.integers(1, 3), st.integers(1, 3),
        st.randoms(use_true_random=False),
    )
    def test_2d(self, m, k, n, rnd):
        rng = np.random.default_rng(rnd.randint(0, 2**31))
        gradcheck(lambda x, y: x.matmul(y), rng.standard_normal((m, k)),
                  rng.standard_normal((k, n)))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 3), st.integers(1, 3), st.integers(1, 3), st.integers(1, 2),
           st.randoms(use_true_random=False))
    def test_batched_times_2d(self, m, k, n, batch, rnd):
        rng = np.random.default_rng(rnd.randint(0, 2**31))
        gradcheck(lambda x, y: x.matmul(y), rng.standard_normal((batch, m, k)),
                  rng.standard_normal((k, n)))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 3), st.integers(1, 3), st.integers(1, 3), st.integers(1, 2),
           st.randoms(use_true_random=False))
    def test_batched_times_batched(self, m, k, n, batch, rnd):
        rng = np.random.default_rng(rnd.randint(0, 2**31))
        gradcheck(lambda x, y: x.matmul(y), rng.standard_normal((batch, m, k)),
                  rng.standard_normal((batch, k, n)))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 4), st.integers(1, 4), st.randoms(use_true_random=False))
    def test_vector_cases(self, k, n, rnd):
        rng = np.random.default_rng(rnd.randint(0, 2**31))
        gradcheck(lambda x, y: x.matmul(y), rng.standard_normal(k),
                  rng.standard_normal((k, n)))
        gradcheck(lambda x, y: x.matmul(y), rng.standard_normal((n, k)),
                  rng.standard_normal(k))
        gradcheck(lambda x, y: x.matmul(y), rng.standard_normal(k),
                  rng.standard_normal(k))


# ----------------------------------------------------------------------
# Shape manipulation
# ----------------------------------------------------------------------
class TestShapes:
    @settings(max_examples=15, deadline=None)
    @given(small_arrays(min_dims=2, max_dims=3))
    def test_transpose(self, data):
        gradcheck(lambda x: x.transpose(), data)

    @settings(max_examples=15, deadline=None)
    @given(small_arrays(min_dims=2, max_dims=3))
    def test_swapaxes(self, data):
        gradcheck(lambda x: x.swapaxes(0, -1), data)

    @settings(max_examples=15, deadline=None)
    @given(small_arrays(min_dims=2, max_dims=3))
    def test_reshape_and_flatten(self, data):
        gradcheck(lambda x: x.reshape(-1), data)
        gradcheck(lambda x: x.flatten(), data)

    @settings(max_examples=15, deadline=None)
    @given(small_arrays(min_dims=2, max_dims=2, max_side=4), st.data())
    def test_getitem_with_duplicate_indices(self, data, draw):
        rows = draw.draw(
            st.lists(st.integers(0, data.shape[0] - 1), min_size=1, max_size=5)
        )
        index = np.asarray(rows, dtype=np.int64)  # duplicates must accumulate
        gradcheck(lambda x: x[index], data)

    @settings(max_examples=15, deadline=None)
    @given(small_arrays(min_dims=2, max_dims=2), small_arrays(min_dims=2, max_dims=2))
    def test_concatenate(self, a, b):
        assume(a.shape[1] == b.shape[1])
        gradcheck(lambda x, y: Tensor.concatenate([x, y], axis=0), a, b)

    @settings(max_examples=15, deadline=None)
    @given(small_arrays(min_dims=2, max_dims=2))
    def test_stack(self, data):
        gradcheck(lambda x, y: Tensor.stack([x, y], axis=1), data, data + 1.0)


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------
class TestReductions:
    @settings(max_examples=20, deadline=None)
    @given(small_arrays(min_dims=1, max_dims=3), st.data())
    def test_sum_and_mean(self, data, draw):
        axis = draw.draw(
            st.one_of(st.none(), st.integers(-data.ndim, data.ndim - 1))
        )
        keepdims = draw.draw(st.booleans())
        gradcheck(lambda x: x.sum(axis=axis, keepdims=keepdims), data)
        gradcheck(lambda x: x.mean(axis=axis, keepdims=keepdims), data)

    @settings(max_examples=20, deadline=None)
    @given(small_arrays(min_dims=1, max_dims=2, max_side=4), st.data())
    def test_max_min(self, data, draw):
        flat = np.sort(np.abs(data.reshape(-1)))
        assume(flat.size == np.unique(data).size)  # ties sit on a kink
        assume(np.diff(np.sort(data.reshape(-1))).min(initial=1.0) > 1e-3)
        axis = draw.draw(st.one_of(st.none(), st.integers(0, data.ndim - 1)))
        gradcheck(lambda x: x.max(axis=axis), data)
        gradcheck(lambda x: x.min(axis=axis), data)


# ----------------------------------------------------------------------
# Elementwise non-linearities
# ----------------------------------------------------------------------
SMOOTH_OPS = {
    "exp": (lambda x: x.exp(), lambda a: np.clip(a, -3, 3)),
    "log": (lambda x: x.log(), lambda a: np.abs(a) + 0.5),
    "sqrt": (lambda x: x.sqrt(), lambda a: np.abs(a) + 0.5),
    "tanh": (lambda x: x.tanh(), lambda a: a),
    "sigmoid": (lambda x: x.sigmoid(), lambda a: a),
    "softmax": (lambda x: x.softmax(axis=-1), lambda a: a),
    "log_softmax": (lambda x: x.log_softmax(axis=-1), lambda a: a),
}


class TestElementwise:
    @pytest.mark.parametrize("name", sorted(SMOOTH_OPS))
    @settings(max_examples=15, deadline=None)
    @given(data=small_arrays())
    def test_smooth_op(self, name, data):
        op, domain = SMOOTH_OPS[name]
        gradcheck(op, domain(data), atol=1e-3, rtol=1e-2)

    @settings(max_examples=20, deadline=None)
    @given(small_arrays())
    def test_relu(self, data):
        assume(_away_from(data, (0.0,)))
        gradcheck(lambda x: x.relu(), data)

    @settings(max_examples=20, deadline=None)
    @given(small_arrays(), st.floats(min_value=0.01, max_value=0.5))
    def test_leaky_relu(self, data, slope):
        assume(_away_from(data, (0.0,)))
        gradcheck(lambda x: x.leaky_relu(slope), data)

    @settings(max_examples=20, deadline=None)
    @given(small_arrays())
    def test_abs(self, data):
        assume(_away_from(data, (0.0,)))
        gradcheck(lambda x: x.abs(), data)

    @settings(max_examples=20, deadline=None)
    @given(small_arrays())
    def test_clip(self, data):
        assume(_away_from(data, (-1.0, 1.0)))
        gradcheck(lambda x: x.clip(-1.0, 1.0), data)


# ----------------------------------------------------------------------
# Layers and losses used by CALLOC and the baselines
# ----------------------------------------------------------------------
class TestLayers:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 3),
           st.randoms(use_true_random=False))
    def test_linear(self, in_features, out_features, batch, rnd):
        rng = np.random.default_rng(rnd.randint(0, 2**31))
        layer = Linear(in_features, out_features, rng=np.random.default_rng(3))
        module_gradcheck(layer, rng.standard_normal((batch, in_features)))

    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 5), st.integers(1, 3), st.randoms(use_true_random=False))
    def test_layer_norm(self, features, batch, rnd):
        rng = np.random.default_rng(rnd.randint(0, 2**31))
        data = rng.standard_normal((batch, features))
        assume(np.ptp(data, axis=-1).min() > 0.1)  # degenerate rows: var ~ 0
        module_gradcheck(LayerNorm(features), data, atol=1e-3, rtol=1e-2)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(1, 2), st.integers(1, 2), st.integers(2, 3),
           st.integers(0, 1), st.randoms(use_true_random=False))
    def test_conv1d(self, in_channels, out_channels, kernel, padding, rnd):
        rng = np.random.default_rng(rnd.randint(0, 2**31))
        length = kernel + 2
        layer = Conv1d(
            in_channels, out_channels, kernel, padding=padding,
            rng=np.random.default_rng(5),
        )
        module_gradcheck(layer, rng.standard_normal((2, in_channels, length)))

    @settings(max_examples=8, deadline=None)
    @given(st.integers(2, 3), st.integers(1, 2), st.randoms(use_true_random=False))
    def test_maxpool1d(self, kernel, channels, rnd):
        rng = np.random.default_rng(rnd.randint(0, 2**31))
        length = kernel * 2 + 1
        # Distinct values with comfortable gaps keep the pooling argmax off ties.
        values = rng.permutation(np.linspace(-2.0, 2.0, 2 * channels * length))
        data = values.reshape(2, channels, length)
        module_gradcheck(MaxPool1d(kernel), data)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(2, 4), st.integers(1, 3), st.data())
    def test_embedding_accumulates_duplicate_rows(self, vocab, dim, draw):
        indices = draw.draw(
            st.lists(st.integers(0, vocab - 1), min_size=1, max_size=5)
        )
        layer = Embedding(vocab, dim, rng=np.random.default_rng(7))
        layer.eval()
        out = layer(np.asarray(indices))
        weights = _projection(out.shape, seed=1)
        layer.zero_grad()
        (out * Tensor(weights)).sum().backward()
        analytic = layer.weight.grad
        expected = np.zeros_like(layer.weight.data)
        np.add.at(expected, np.asarray(indices), weights)
        np.testing.assert_allclose(analytic, expected, atol=1e-9)

    @settings(max_examples=6, deadline=None)
    @given(st.integers(1, 3), st.randoms(use_true_random=False))
    def test_mlp_end_to_end(self, batch, rnd):
        rng = np.random.default_rng(rnd.randint(0, 2**31))
        mlp = Sequential(
            Linear(3, 4, rng=np.random.default_rng(11)),
            Tanh(),
            Linear(4, 2, rng=np.random.default_rng(12)),
        )
        module_gradcheck(mlp, rng.standard_normal((batch, 3)))

    @settings(max_examples=6, deadline=None)
    @given(st.integers(1, 2), st.integers(1, 3), st.integers(2, 3),
           st.randoms(use_true_random=False))
    def test_scaled_dot_product_attention(self, n_q, n_k, d_k, rnd):
        rng = np.random.default_rng(rnd.randint(0, 2**31))
        attention = ScaledDotProductAttention()
        module_gradcheck(
            attention,
            rng.standard_normal((n_q, d_k)),
            rng.standard_normal((n_k, d_k)),
            rng.standard_normal((n_k, 2)),
            atol=1e-3, rtol=1e-2,
        )


class TestLosses:
    @settings(max_examples=12, deadline=None)
    @given(st.integers(1, 4), st.integers(2, 5), st.randoms(use_true_random=False))
    def test_cross_entropy_wrt_logits(self, batch, classes, rnd):
        rng = np.random.default_rng(rnd.randint(0, 2**31))
        logits = rng.standard_normal((batch, classes))
        labels = rng.integers(0, classes, size=batch)
        loss = CrossEntropyLoss()
        gradcheck(lambda x: loss(x, labels), logits, atol=1e-3, rtol=1e-2)

    @settings(max_examples=12, deadline=None)
    @given(st.floats(0.0, 0.3), st.randoms(use_true_random=False))
    def test_cross_entropy_with_label_smoothing(self, smoothing, rnd):
        rng = np.random.default_rng(rnd.randint(0, 2**31))
        logits = rng.standard_normal((3, 4))
        labels = rng.integers(0, 4, size=3)
        loss = CrossEntropyLoss(label_smoothing=smoothing)
        gradcheck(lambda x: loss(x, labels), logits, atol=1e-3, rtol=1e-2)

    @settings(max_examples=12, deadline=None)
    @given(small_arrays(min_dims=2, max_dims=2), st.randoms(use_true_random=False))
    def test_mse_wrt_predictions(self, targets, rnd):
        rng = np.random.default_rng(rnd.randint(0, 2**31))
        predictions = rng.standard_normal(targets.shape)
        loss = MSELoss()
        gradcheck(lambda x: loss(x, targets), predictions)


# ----------------------------------------------------------------------
# Vectorized kernels vs their per-position loop references (bitwise)
# ----------------------------------------------------------------------
def _conv1d_loop(layer, inputs):
    """Per-output-position Conv1d — the implementation the gather replaced."""
    batch, channels, length = inputs.shape
    if layer.padding > 0:
        left = Tensor(np.zeros((batch, channels, layer.padding)))
        right = Tensor(np.zeros((batch, channels, layer.padding)))
        inputs = Tensor.concatenate([left, inputs, right], axis=2)
        length = length + 2 * layer.padding
    out_length = (length - layer.kernel_size) // layer.stride + 1
    columns = []
    for position in range(out_length):
        start = position * layer.stride
        patch = inputs[:, :, start : start + layer.kernel_size]
        columns.append(patch.reshape(batch, channels * layer.kernel_size))
    stacked = Tensor.stack(columns, axis=1)
    return (stacked.matmul(layer.weight) + layer.bias).transpose(0, 2, 1)


def _maxpool1d_loop(layer, inputs):
    """Per-window MaxPool1d reference."""
    batch, channels, length = inputs.shape
    out_length = (length - layer.kernel_size) // layer.stride + 1
    columns = []
    for position in range(out_length):
        start = position * layer.stride
        window = inputs[:, :, start : start + layer.kernel_size]
        columns.append(window.max(axis=2))
    return Tensor.stack(columns, axis=2)


def _bitwise_equal(a, b):
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return a.shape == b.shape and bool(np.all(a.view(np.uint64) == b.view(np.uint64)))


class TestVectorizedKernelIdentity:
    """The gather-based Conv1d/MaxPool1d must match the loops *bitwise*.

    Tolerance-based gradchecks cannot catch a reordering of the gradient
    accumulation; these tests pin the stronger engine invariant that the
    vectorization changed nothing at all.  Overlapping windows (stride <
    kernel) are the hard case for the conv backward — the scatter-add must
    accumulate window gradients in the same ascending order the loop did —
    and integer-valued inputs force max-pool ties through the backward.
    """

    @pytest.mark.parametrize(
        "kernel,stride,padding",
        [(5, 2, 2), (3, 1, 1), (4, 4, 0), (2, 1, 0)],
        ids=["strided", "overlap", "disjoint", "dense-overlap"],
    )
    def test_conv1d_forward_and_grads_bitwise(self, kernel, stride, padding):
        rng = np.random.default_rng(13)
        layer = Conv1d(2, 3, kernel, stride=stride, padding=padding,
                       rng=np.random.default_rng(7))
        data = rng.standard_normal((4, 2, 17))
        fast_in = Tensor(data.copy(), requires_grad=True)
        fast_out = layer(fast_in)
        fast_out.sum().backward()
        fast_grads = [fast_in.grad.copy(), layer.weight.grad.copy(), layer.bias.grad.copy()]
        layer.zero_grad()
        loop_in = Tensor(data.copy(), requires_grad=True)
        loop_out = _conv1d_loop(layer, loop_in)
        loop_out.sum().backward()
        loop_grads = [loop_in.grad, layer.weight.grad, layer.bias.grad]
        layer.zero_grad()
        assert _bitwise_equal(fast_out.data, loop_out.data)
        for fast, loop in zip(fast_grads, loop_grads):
            assert _bitwise_equal(fast, loop)

    @pytest.mark.parametrize("kernel,stride", [(2, 2), (3, 1), (2, 1)],
                             ids=["disjoint", "overlap", "dense"])
    def test_maxpool1d_with_ties_bitwise(self, kernel, stride):
        rng = np.random.default_rng(21)
        # Small integers guarantee repeated values inside windows: the
        # backward's tie handling must route gradients identically.
        data = rng.integers(-2, 3, size=(4, 3, 16)).astype(np.float64)
        layer = MaxPool1d(kernel, stride=stride)
        fast_in = Tensor(data.copy(), requires_grad=True)
        fast_out = layer(fast_in)
        fast_out.sum().backward()
        loop_in = Tensor(data.copy(), requires_grad=True)
        loop_out = _maxpool1d_loop(layer, loop_in)
        loop_out.sum().backward()
        assert _bitwise_equal(fast_out.data, loop_out.data)
        assert _bitwise_equal(fast_in.grad, loop_in.grad)
