"""Unit tests for loss functions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import CrossEntropyLoss, MSELoss, Tensor, one_hot


class TestOneHot:
    def test_encoding(self):
        encoded = one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(encoded, [[1, 0, 0], [0, 0, 1]])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)

    def test_rejects_non_1d(self):
        with pytest.raises(ValueError):
            one_hot(np.zeros((2, 2), dtype=int), 3)

    def test_empty_labels(self):
        assert one_hot(np.array([], dtype=int), 4).shape == (0, 4)


class TestMSELoss:
    def test_zero_for_identical_inputs(self):
        loss = MSELoss()(Tensor(np.ones((3, 2))), np.ones((3, 2)))
        assert loss.item() == pytest.approx(0.0)

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=(4, 3)), rng.normal(size=(4, 3))
        assert MSELoss()(Tensor(a), b).item() == pytest.approx(((a - b) ** 2).mean())

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            MSELoss()(Tensor(np.zeros((2, 2))), np.zeros((3, 2)))

    def test_gradient(self):
        pred = Tensor(np.array([[1.0, 2.0]]), requires_grad=True)
        MSELoss()(pred, np.array([[0.0, 0.0]])).backward()
        np.testing.assert_allclose(pred.grad, [[1.0, 2.0]])


class TestCrossEntropyLoss:
    def test_uniform_logits_give_log_num_classes(self):
        logits = Tensor(np.zeros((4, 10)))
        loss = CrossEntropyLoss()(logits, np.zeros(4, dtype=int))
        assert loss.item() == pytest.approx(np.log(10))

    def test_perfect_prediction_gives_near_zero_loss(self):
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        loss = CrossEntropyLoss()(Tensor(logits), np.array([1, 2]))
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_accepts_one_hot_targets(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(3, 4))
        labels = np.array([1, 3, 0])
        a = CrossEntropyLoss()(Tensor(logits), labels).item()
        b = CrossEntropyLoss()(Tensor(logits), one_hot(labels, 4)).item()
        assert a == pytest.approx(b)

    def test_rejects_non_2d_logits(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss()(Tensor(np.zeros(3)), np.array([0]))

    def test_rejects_mismatched_targets(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss()(Tensor(np.zeros((2, 3))), np.zeros((2, 4)))

    def test_label_smoothing_increases_loss_of_perfect_prediction(self):
        logits = np.full((1, 3), -50.0)
        logits[0, 0] = 50.0
        plain = CrossEntropyLoss()(Tensor(logits), np.array([0])).item()
        smoothed = CrossEntropyLoss(label_smoothing=0.2)(Tensor(logits), np.array([0])).item()
        assert smoothed > plain

    def test_invalid_label_smoothing(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss(label_smoothing=1.0)

    def test_gradient_is_softmax_minus_onehot(self):
        rng = np.random.default_rng(0)
        logits_data = rng.normal(size=(2, 3))
        logits = Tensor(logits_data, requires_grad=True)
        labels = np.array([0, 2])
        CrossEntropyLoss()(logits, labels).backward()
        shifted = np.exp(logits_data - logits_data.max(axis=1, keepdims=True))
        probs = shifted / shifted.sum(axis=1, keepdims=True)
        expected = (probs - one_hot(labels, 3)) / 2
        np.testing.assert_allclose(logits.grad, expected, atol=1e-10)

    def test_extreme_logits_are_stable(self):
        logits = Tensor(np.array([[1e4, -1e4, 0.0]]))
        loss = CrossEntropyLoss()(logits, np.array([0]))
        assert np.isfinite(loss.item())
