"""Unit tests for neural-network layers and the Module system."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Conv1d,
    Dropout,
    Embedding,
    Flatten,
    GaussianNoise,
    LayerNorm,
    LeakyReLU,
    Linear,
    MaxPool1d,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Softmax,
    Tanh,
    Tensor,
)


class TestModuleSystem:
    def test_parameters_are_discovered_recursively(self):
        net = Sequential(Linear(4, 8), ReLU(), Linear(8, 2))
        assert len(net.parameters()) == 4  # two weights + two biases

    def test_named_parameters_have_qualified_names(self):
        net = Sequential(Linear(3, 3))
        names = [name for name, _ in net.named_parameters()]
        assert names == ["layer_0.weight", "layer_0.bias"]

    def test_modules_iterates_children(self):
        net = Sequential(Linear(2, 2), ReLU())
        assert len(list(net.modules())) == 3  # Sequential + 2 children

    def test_train_eval_propagates(self):
        net = Sequential(Linear(2, 2), Dropout(0.5))
        net.eval()
        assert all(not module.training for module in net.modules())
        net.train()
        assert all(module.training for module in net.modules())

    def test_zero_grad_clears_all(self):
        layer = Linear(3, 2)
        out = layer(Tensor(np.ones((1, 3)), requires_grad=True))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_round_trip(self):
        source = Linear(3, 2, rng=np.random.default_rng(0))
        target = Linear(3, 2, rng=np.random.default_rng(99))
        target.load_state_dict(source.state_dict())
        np.testing.assert_allclose(source.weight.data, target.weight.data)

    def test_load_state_dict_rejects_missing_keys(self):
        layer = Linear(3, 2)
        with pytest.raises(KeyError):
            layer.load_state_dict({"weight": layer.weight.data})

    def test_load_state_dict_rejects_bad_shape(self):
        layer = Linear(3, 2)
        state = layer.state_dict()
        state["weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            layer.load_state_dict(state)

    def test_num_parameters(self):
        layer = Linear(10, 5)
        assert layer.num_parameters() == 10 * 5 + 5

    def test_state_dict_returns_copies(self):
        layer = Linear(2, 2)
        state = layer.state_dict()
        state["weight"][:] = 0.0
        assert not np.allclose(layer.weight.data, 0.0)


class TestLinear:
    def test_output_shape(self):
        layer = Linear(6, 3)
        assert layer(Tensor(np.zeros((5, 6)))).shape == (5, 3)

    def test_no_bias_option(self):
        layer = Linear(4, 2, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_rejects_non_positive_dimensions(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_forward_matches_manual_computation(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(4, 3))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_gradients_flow_to_weights(self):
        layer = Linear(3, 2)
        layer(Tensor(np.ones((2, 3)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_he_initializer_option(self):
        layer = Linear(100, 50, initializer="he_normal", rng=np.random.default_rng(0))
        assert abs(layer.weight.data.std() - np.sqrt(2.0 / 100)) < 0.02

    def test_repr(self):
        assert "Linear(in=3, out=2" in repr(Linear(3, 2))


class TestActivations:
    @pytest.mark.parametrize(
        "module, reference",
        [
            (ReLU(), lambda x: np.maximum(x, 0)),
            (Tanh(), np.tanh),
            (Sigmoid(), lambda x: 1 / (1 + np.exp(-x))),
            (LeakyReLU(0.2), lambda x: np.where(x > 0, x, 0.2 * x)),
        ],
    )
    def test_matches_numpy_reference(self, module, reference):
        data = np.linspace(-2, 2, 11)
        np.testing.assert_allclose(module(Tensor(data)).data, reference(data), atol=1e-12)

    def test_softmax_module(self):
        probs = Softmax()(Tensor(np.random.default_rng(0).normal(size=(3, 5)))).data
        np.testing.assert_allclose(probs.sum(axis=-1), np.ones(3))


class TestDropoutAndNoise:
    def test_dropout_identity_in_eval_mode(self):
        layer = Dropout(0.5)
        layer.eval()
        data = np.ones((4, 4))
        np.testing.assert_allclose(layer(Tensor(data)).data, data)

    def test_dropout_zeroes_some_entries_in_train_mode(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((20, 20)))).data
        assert (out == 0).any()

    def test_dropout_scales_kept_entries(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((50, 50)))).data
        kept = out[out > 0]
        np.testing.assert_allclose(kept, 2.0)

    def test_dropout_rejects_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.5)

    def test_gaussian_noise_only_in_training(self):
        layer = GaussianNoise(0.5, rng=np.random.default_rng(0))
        data = np.zeros((4, 4))
        noisy = layer(Tensor(data)).data
        assert noisy.std() > 0
        layer.eval()
        np.testing.assert_allclose(layer(Tensor(data)).data, data)

    def test_gaussian_noise_std_zero_is_identity(self):
        layer = GaussianNoise(0.0)
        data = np.ones((2, 2))
        np.testing.assert_allclose(layer(Tensor(data)).data, data)

    def test_gaussian_noise_rejects_negative_std(self):
        with pytest.raises(ValueError):
            GaussianNoise(-0.1)

    def test_paper_defaults(self):
        # CALLOC uses dropout 0.2 and Gaussian noise 0.32 (Sec. V.A).
        assert Dropout().rate == pytest.approx(0.2)
        assert GaussianNoise().std == pytest.approx(0.32)


class TestLayerNorm:
    def test_normalises_last_dimension(self):
        layer = LayerNorm(8)
        out = layer(Tensor(np.random.default_rng(0).normal(2.0, 3.0, size=(5, 8)))).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(5), atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(5), atol=1e-2)

    def test_has_learnable_scale_and_shift(self):
        layer = LayerNorm(4)
        assert {p.name for p in layer.parameters()} == {"gamma", "beta"}


class TestSequential:
    def test_applies_in_order(self):
        net = Sequential(Linear(2, 2, rng=np.random.default_rng(0)), ReLU())
        out = net(Tensor(np.array([[1.0, -1.0]])))
        assert (out.data >= 0).all()

    def test_len_getitem_iter(self):
        net = Sequential(ReLU(), Tanh())
        assert len(net) == 2
        assert isinstance(net[1], Tanh)
        assert [type(m) for m in net] == [ReLU, Tanh]

    def test_append(self):
        net = Sequential(ReLU())
        net.append(Linear(2, 2))
        assert len(net) == 2
        assert len(net.parameters()) == 2


class TestConvAndPool:
    def test_conv_output_shape(self):
        conv = Conv1d(1, 4, kernel_size=3, padding=1)
        out = conv(Tensor(np.zeros((2, 1, 10))))
        assert out.shape == (2, 4, 10)

    def test_conv_with_stride(self):
        conv = Conv1d(1, 2, kernel_size=3, stride=2)
        assert conv(Tensor(np.zeros((1, 1, 11)))).shape == (1, 2, 5)
        assert conv.output_length(11) == 5

    def test_conv_rejects_wrong_channels(self):
        conv = Conv1d(2, 4, kernel_size=3)
        with pytest.raises(ValueError):
            conv(Tensor(np.zeros((1, 1, 10))))

    def test_conv_gradients_flow(self):
        conv = Conv1d(1, 2, kernel_size=3)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 1, 8)), requires_grad=True)
        conv(x).sum().backward()
        assert x.grad.shape == (2, 1, 8)
        assert conv.weight.grad is not None

    def test_maxpool_shape_and_values(self):
        pool = MaxPool1d(2)
        data = np.array([[[1.0, 3.0, 2.0, 5.0]]])
        out = pool(Tensor(data))
        np.testing.assert_allclose(out.data, [[[3.0, 5.0]]])

    def test_maxpool_rejects_too_small_input(self):
        pool = MaxPool1d(4)
        with pytest.raises(ValueError):
            pool(Tensor(np.zeros((1, 1, 2))))

    def test_flatten_module(self):
        out = Flatten()(Tensor(np.zeros((3, 2, 5))))
        assert out.shape == (3, 10)


class TestEmbedding:
    def test_lookup_shape(self):
        table = Embedding(10, 4)
        out = table(np.array([1, 5, 5]))
        assert out.shape == (3, 4)

    def test_lookup_returns_matching_rows(self):
        table = Embedding(6, 3)
        out = table(np.array([2]))
        np.testing.assert_allclose(out.data[0], table.weight.data[2])


class TestParameter:
    def test_parameter_requires_grad(self):
        assert Parameter(np.zeros(3)).requires_grad

    def test_custom_module_registration(self):
        class Custom(Module):
            def __init__(self):
                super().__init__()
                self.scale = Parameter(np.ones(1))
                self.inner = Linear(2, 2)

            def forward(self, x):
                return self.inner(x) * self.scale

        module = Custom()
        assert len(module.parameters()) == 3
        names = {name for name, _ in module.named_parameters()}
        assert "scale" in names and "inner.weight" in names
