"""Unit tests for the autograd Tensor: forward values and gradients.

Every differentiable operation is checked against a central-difference
numerical gradient, which is the strongest single invariant of the substrate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor, is_grad_enabled, no_grad


def numerical_gradient(func, array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of ``func`` (scalar output) w.r.t. ``array``."""
    grad = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        plus = func(array)
        flat[index] = original - eps
        minus = func(array)
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(build, shape=(3, 4), seed=0, atol=1e-5):
    """Compare autograd and numerical gradients for a scalar-valued ``build``."""
    rng = np.random.default_rng(seed)
    data = rng.normal(size=shape)
    tensor = Tensor(data.copy(), requires_grad=True)
    output = build(tensor)
    output.backward()
    numeric = numerical_gradient(lambda a: build(Tensor(a.copy())).item(), data.copy())
    assert tensor.grad is not None
    np.testing.assert_allclose(tensor.grad, numeric, atol=atol)


class TestTensorBasics:
    def test_wraps_data_as_float64(self):
        tensor = Tensor([[1, 2], [3, 4]])
        assert tensor.data.dtype == np.float64
        assert tensor.shape == (2, 2)

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_len_and_size(self):
        tensor = Tensor(np.zeros((5, 3)))
        assert len(tensor) == 5
        assert tensor.size == 15
        assert tensor.ndim == 2

    def test_item_on_scalar(self):
        assert Tensor([2.5]).item() == pytest.approx(2.5)

    def test_detach_breaks_graph(self):
        tensor = Tensor([1.0, 2.0], requires_grad=True)
        detached = tensor.detach()
        assert not detached.requires_grad

    def test_copy_is_independent(self):
        tensor = Tensor([1.0, 2.0])
        duplicate = tensor.copy()
        duplicate.data[0] = 99.0
        assert tensor.data[0] == 1.0

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_requires_scalar_without_gradient(self):
        tensor = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (tensor * 2).backward()

    def test_zero_grad(self):
        tensor = Tensor([1.0], requires_grad=True)
        (tensor * 3).backward()
        assert tensor.grad is not None
        tensor.zero_grad()
        assert tensor.grad is None


class TestNoGrad:
    def test_no_grad_disables_graph(self):
        with no_grad():
            tensor = Tensor([1.0], requires_grad=True)
            assert not tensor.requires_grad
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        try:
            with no_grad():
                raise ValueError("boom")
        except ValueError:
            pass
        assert is_grad_enabled()

    def test_operations_inside_no_grad_do_not_track(self):
        tensor = Tensor([1.0, 2.0], requires_grad=True)
        with no_grad():
            result = tensor * 2 + 1
        assert not result.requires_grad


class TestArithmeticGradients:
    def test_add(self):
        check_gradient(lambda t: (t + 3.0).sum())

    def test_radd(self):
        check_gradient(lambda t: (3.0 + t).sum())

    def test_sub(self):
        check_gradient(lambda t: (t - 1.5).sum())

    def test_rsub(self):
        check_gradient(lambda t: (1.5 - t).sum())

    def test_mul(self):
        check_gradient(lambda t: (t * t).sum())

    def test_div(self):
        check_gradient(lambda t: (t / 2.5).sum(), shape=(2, 3))

    def test_rdiv(self):
        check_gradient(lambda t: (1.0 / (t + 10.0)).sum())

    def test_neg(self):
        check_gradient(lambda t: (-t).sum())

    def test_pow(self):
        check_gradient(lambda t: ((t + 10.0) ** 3).sum())

    def test_pow_requires_scalar_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_broadcast_add_gradient(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 4)))
        np.testing.assert_allclose(b.grad, np.full(4, 3.0))

    def test_broadcast_mul_gradient(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.array([[2.0], [3.0]]), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, np.repeat([[2.0], [3.0]], 3, axis=1))
        np.testing.assert_allclose(b.grad, np.full((2, 1), 3.0))

    def test_same_tensor_used_twice_accumulates(self):
        tensor = Tensor([2.0], requires_grad=True)
        (tensor * tensor).backward()
        np.testing.assert_allclose(tensor.grad, [4.0])


class TestMatmulGradients:
    def test_matrix_matrix(self):
        rng = np.random.default_rng(1)
        other = rng.normal(size=(4, 2))
        check_gradient(lambda t: (t.matmul(Tensor(other))).sum(), shape=(3, 4))

    def test_matmul_operator(self):
        a = Tensor(np.eye(2), requires_grad=True)
        b = Tensor([[1.0, 2.0], [3.0, 4.0]])
        (a @ b).sum().backward()
        assert a.grad.shape == (2, 2)

    def test_matmul_gradient_of_second_operand(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(3, 4))
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        Tensor(a).matmul(b).sum().backward()
        np.testing.assert_allclose(b.grad, a.T @ np.ones((3, 2)), atol=1e-10)

    def test_batched_matmul(self):
        rng = np.random.default_rng(3)
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 4, 5)), requires_grad=True)
        out = a.matmul(b)
        assert out.shape == (2, 3, 5)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (2, 4, 5)

    def test_vector_matrix(self):
        rng = np.random.default_rng(4)
        m = rng.normal(size=(4, 3))
        check_gradient(lambda t: t.matmul(Tensor(m)).sum(), shape=(4,))


class TestShapeOps:
    def test_reshape_gradient(self):
        check_gradient(lambda t: (t.reshape(12) * 2).sum(), shape=(3, 4))

    def test_reshape_with_tuple(self):
        tensor = Tensor(np.arange(6.0))
        assert tensor.reshape((2, 3)).shape == (2, 3)

    def test_transpose_gradient(self):
        check_gradient(lambda t: (t.transpose() * 3).sum(), shape=(2, 5))

    def test_transpose_with_axes(self):
        tensor = Tensor(np.zeros((2, 3, 4)), requires_grad=True)
        out = tensor.transpose(0, 2, 1)
        assert out.shape == (2, 4, 3)
        out.sum().backward()
        assert tensor.grad.shape == (2, 3, 4)

    def test_swapaxes(self):
        check_gradient(lambda t: t.swapaxes(0, 1).sum(), shape=(3, 2))

    def test_getitem_gradient(self):
        tensor = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
        tensor[1].sum().backward()
        expected = np.zeros((3, 4))
        expected[1] = 1.0
        np.testing.assert_allclose(tensor.grad, expected)

    def test_getitem_slice_gradient(self):
        tensor = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
        tensor[:, 1:3].sum().backward()
        expected = np.zeros((3, 4))
        expected[:, 1:3] = 1.0
        np.testing.assert_allclose(tensor.grad, expected)

    def test_flatten(self):
        tensor = Tensor(np.zeros((2, 3, 4)))
        assert tensor.flatten().shape == (2, 12)

    def test_concatenate_gradient(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        out = Tensor.concatenate([a, b], axis=0)
        assert out.shape == (5, 2)
        (out * 2).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 2.0))
        np.testing.assert_allclose(b.grad, np.full((3, 2), 2.0))

    def test_stack_gradient(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        out = Tensor.stack([a, b], axis=0)
        assert out.shape == (2, 3)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        np.testing.assert_allclose(b.grad, np.ones(3))


class TestReductions:
    def test_sum_all(self):
        check_gradient(lambda t: t.sum())

    def test_sum_axis(self):
        check_gradient(lambda t: (t.sum(axis=0) * 2).sum())

    def test_sum_keepdims(self):
        tensor = Tensor(np.ones((2, 3)), requires_grad=True)
        out = tensor.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        np.testing.assert_allclose(tensor.grad, np.ones((2, 3)))

    def test_mean_all(self):
        check_gradient(lambda t: t.mean())

    def test_mean_axis(self):
        check_gradient(lambda t: (t.mean(axis=1) ** 2).sum())

    def test_max_all(self):
        tensor = Tensor(np.array([1.0, 5.0, 3.0]), requires_grad=True)
        tensor.max().backward()
        np.testing.assert_allclose(tensor.grad, [0.0, 1.0, 0.0])

    def test_max_axis(self):
        tensor = Tensor(np.array([[1.0, 2.0], [4.0, 3.0]]), requires_grad=True)
        tensor.max(axis=1).sum().backward()
        np.testing.assert_allclose(tensor.grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_min(self):
        tensor = Tensor(np.array([2.0, -1.0, 3.0]), requires_grad=True)
        out = tensor.min()
        assert out.item() == pytest.approx(-1.0)


class TestNonLinearities:
    def test_exp(self):
        check_gradient(lambda t: t.exp().sum())

    def test_log(self):
        check_gradient(lambda t: (t + 10.0).log().sum())

    def test_sqrt(self):
        check_gradient(lambda t: (t + 10.0).sqrt().sum())

    def test_tanh(self):
        check_gradient(lambda t: t.tanh().sum())

    def test_sigmoid(self):
        check_gradient(lambda t: t.sigmoid().sum())

    def test_relu_forward(self):
        tensor = Tensor([-1.0, 0.5])
        np.testing.assert_allclose(tensor.relu().data, [0.0, 0.5])

    def test_relu_gradient(self):
        tensor = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        tensor.relu().sum().backward()
        np.testing.assert_allclose(tensor.grad, [0.0, 1.0])

    def test_leaky_relu(self):
        tensor = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        tensor.leaky_relu(0.1).sum().backward()
        np.testing.assert_allclose(tensor.grad, [0.1, 1.0])

    def test_softmax_rows_sum_to_one(self):
        tensor = Tensor(np.random.default_rng(0).normal(size=(4, 6)))
        probs = tensor.softmax(axis=-1).data
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(4))

    def test_softmax_gradient(self):
        check_gradient(lambda t: (t.softmax(axis=-1) ** 2).sum(), shape=(2, 5))

    def test_log_softmax_matches_log_of_softmax(self):
        data = np.random.default_rng(1).normal(size=(3, 4))
        np.testing.assert_allclose(
            Tensor(data).log_softmax(axis=-1).data,
            np.log(Tensor(data).softmax(axis=-1).data),
            atol=1e-10,
        )

    def test_log_softmax_gradient(self):
        check_gradient(lambda t: (t.log_softmax(axis=-1) * 0.3).sum(), shape=(2, 4))

    def test_softmax_is_numerically_stable(self):
        tensor = Tensor(np.array([[1000.0, 1000.0], [-1000.0, -1000.0]]))
        probs = tensor.softmax(axis=-1).data
        assert np.isfinite(probs).all()

    def test_clip_gradient(self):
        tensor = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        tensor.clip(0.0, 1.0).sum().backward()
        np.testing.assert_allclose(tensor.grad, [0.0, 1.0, 0.0])

    def test_abs(self):
        tensor = Tensor(np.array([-3.0, 2.0]), requires_grad=True)
        tensor.abs().sum().backward()
        np.testing.assert_allclose(tensor.grad, [-1.0, 1.0])

    def test_dropout_eval_like_passthrough_at_zero_rate(self):
        tensor = Tensor(np.ones((2, 2)))
        out = tensor.dropout(0.0, np.random.default_rng(0))
        np.testing.assert_allclose(out.data, tensor.data)

    def test_dropout_rejects_invalid_rate(self):
        with pytest.raises(ValueError):
            Tensor(np.ones(3)).dropout(1.0, np.random.default_rng(0))


class TestEndToEndGradients:
    def test_two_layer_network_input_gradient(self):
        rng = np.random.default_rng(7)
        w1 = Tensor(rng.normal(size=(5, 8)))
        w2 = Tensor(rng.normal(size=(8, 1)))

        def network(t: Tensor) -> Tensor:
            return (t.matmul(w1).tanh().matmul(w2)).sum()

        check_gradient(network, shape=(4, 5), seed=8)

    def test_gradient_accumulates_across_multiple_backwards(self):
        tensor = Tensor([1.0], requires_grad=True)
        (tensor * 2).backward()
        (tensor * 3).backward()
        np.testing.assert_allclose(tensor.grad, [5.0])
