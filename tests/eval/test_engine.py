"""Tests for the parallel, cache-aware execution engine.

Covers the determinism guarantees the engine advertises (``jobs=N`` and the
warm-cache path are bit-identical to the serial cold path), the
content-addressed cache keying rules, and the engine-backed entry points
(:func:`repro.api.run_experiment`, :meth:`LocalizationService.trained_on`).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import ExperimentSpec, LocalizationService, run_experiment
from repro.eval import ExperimentRunner
from repro.eval.engine import (
    ArtifactCache,
    ExecutionEngine,
    ModelTask,
    build_plan,
    cache_key,
    default_cache_dir,
    simulate_campaign,
    train_localizer,
)
from repro.eval.scenarios import AttackScenario, EvaluationConfig


@pytest.fixture(scope="module")
def quick_spec() -> ExperimentSpec:
    """Quick-profile spec, restricted enough to keep the test suite fast.

    Uses the quick profile's grid definition (building, granularity, seeds)
    with a reduced model/device/scenario selection; KNN exercises the
    surrogate-gradient path, DNN the native white-box path.
    """
    return ExperimentSpec(
        models=("KNN", "DNN"),
        profile="quick",
        devices=("OP3", "S7"),
        attack_methods=("FGSM",),
        epsilons=(0.1, 0.3),
        phi_percents=(10.0, 50.0),
    )


@pytest.fixture(scope="module")
def serial_records(quick_spec):
    return run_experiment(quick_spec).to_records()


class TestDeterminism:
    def test_parallel_matches_serial_bit_for_bit(self, quick_spec, serial_records):
        """jobs=4 and jobs=1 produce identical ResultSet.to_records()."""
        parallel = run_experiment(quick_spec, jobs=4)
        assert parallel.to_records() == serial_records

    def test_engine_matches_legacy_serial_runner(self, quick_spec, serial_records):
        config = quick_spec.config()
        runner = ExperimentRunner(config)
        legacy = runner.evaluate_models(
            quick_spec.resolve_factories(config),
            quick_spec.resolve_scenarios(config),
            buildings=quick_spec.buildings,
            devices=quick_spec.devices,
        )
        assert legacy.to_records() == serial_records

    def test_warm_cache_is_bit_identical_to_cold(
        self, quick_spec, serial_records, tmp_path
    ):
        cache_dir = tmp_path / "cache"
        cold = run_experiment(quick_spec, cache=cache_dir)
        warm = run_experiment(quick_spec, cache=cache_dir)
        assert cold.to_records() == serial_records
        assert warm.to_records() == serial_records

    def test_warm_cache_serves_all_artifacts(self, quick_spec, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        run_experiment(quick_spec, cache=cache)
        warm_cache = ArtifactCache(tmp_path / "cache")
        run_experiment(quick_spec, cache=warm_cache)
        assert warm_cache.stats.misses == 0
        assert warm_cache.stats.hits > 0
        # 1 campaign + 2 models + 2 models x 2 devices x 1 crafted grid: all
        # four FGSM scenarios of a unit are crafted (and cached) as a single
        # batched artefact per attack method, not one artefact per scenario.
        assert warm_cache.stats.hits == 1 + 2 + 2 * 2 * 1

    def test_parallel_warm_cache_identical(self, quick_spec, serial_records, tmp_path):
        run_experiment(quick_spec, cache=tmp_path / "cache")
        warm_parallel = run_experiment(quick_spec, jobs=3, cache=tmp_path / "cache")
        assert warm_parallel.to_records() == serial_records

    def test_thread_executor_matches_serial_bit_for_bit(
        self, quick_spec, serial_records
    ):
        """jobs=N over a thread pool is the third identical transport."""
        threaded = run_experiment(quick_spec, jobs=2, executor="thread")
        assert threaded.to_records() == serial_records

    def test_unknown_executor_rejected(self):
        config = EvaluationConfig.quick()
        with pytest.raises(ValueError, match="executor"):
            ExecutionEngine(config, jobs=2, executor="fork-bomb")


class TestArtifactCache:
    def test_coerce(self, tmp_path):
        assert ArtifactCache.coerce(None) is None
        assert ArtifactCache.coerce(False) is None
        enabled = ArtifactCache.coerce(True)
        assert enabled is not None and enabled.root == default_cache_dir()
        at_path = ArtifactCache.coerce(tmp_path)
        assert at_path.root == tmp_path
        assert ArtifactCache.coerce(at_path) is at_path

    def test_key_is_stable_and_sensitive(self):
        config = EvaluationConfig.quick()
        payload = {"building": "Building 1", "config": config}
        assert cache_key("campaign", payload) == cache_key("campaign", payload)
        other = {"building": "Building 2", "config": config}
        assert cache_key("campaign", payload) != cache_key("campaign", other)
        assert cache_key("model", payload) != cache_key("campaign", payload)

    def test_model_params_change_the_key(self):
        a = ModelTask.create("KNN", "KNN", {"k": 3})
        b = ModelTask.create("KNN", "KNN", {"k": 5})
        assert cache_key("model", {"m": a}) != cache_key("model", {"m": b})

    def test_pickle_roundtrip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.get_pickle("thing", "ab" * 32) is None
        cache.put_pickle("thing", "ab" * 32, {"value": 42})
        assert cache.get_pickle("thing", "ab" * 32) == {"value": 42}
        assert cache.stats.as_dict() == {"hits": 1, "misses": 1, "stores": 1}

    def test_array_roundtrip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        arrays = {"a": np.arange(6.0).reshape(2, 3), "b": np.array([1, 2])}
        digest = "cd" * 32
        cache.put_arrays("batch", digest, arrays)
        loaded = cache.get_arrays("batch", digest)
        np.testing.assert_array_equal(loaded["a"], arrays["a"])
        np.testing.assert_array_equal(loaded["b"], arrays["b"])

    def test_export_copies_artifact_out(self, tmp_path):
        """The export hook hands stored artefacts to downstream registries
        (e.g. the serving ModelStore) as standalone files."""
        cache = ArtifactCache(tmp_path / "cache")
        arrays = {"a": np.arange(4.0)}
        cache.put_arrays("batch", "ab" * 32, arrays)
        exported = cache.export("batch", "ab" * 32, tmp_path / "out" / "artifact")
        assert exported == tmp_path / "out" / "artifact.npz"
        with np.load(exported) as archive:
            np.testing.assert_array_equal(archive["a"], arrays["a"])
        cache.put_pickle("thing", "cd" * 32, {"value": 1})
        exported_pkl = cache.export("thing", "cd" * 32, tmp_path / "thing.pkl")
        assert exported_pkl.suffix == ".pkl"
        with pytest.raises(FileNotFoundError):
            cache.export("batch", "ef" * 32, tmp_path / "missing")

    def test_disabled_cache_stores_nothing(self, tmp_path):
        cache = ArtifactCache(tmp_path, enabled=False)
        cache.put_pickle("thing", "ef" * 32, 1)
        assert cache.get_pickle("thing", "ef" * 32) is None
        assert not any(tmp_path.iterdir())

    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"


class TestPlan:
    def test_unit_counts(self):
        tasks = [ModelTask.create("KNN", "KNN", {}), ModelTask.create("DNN", "DNN", {})]
        scenarios = (AttackScenario(), AttackScenario(epsilon=0.2))
        plan = build_plan(tasks, scenarios, ("Building 1", "Building 2"), ("OP3",))
        assert len(plan.campaign_units) == 2
        assert len(plan.train_units) == 4
        assert len(plan.eval_units) == 4  # 2 models x 2 buildings x 1 device
        assert plan.num_units == 10
        assert "2 campaign" in plan.describe()

    def test_empty_tasks_rejected(self):
        with pytest.raises(ValueError, match="at least one model"):
            build_plan([], (), ("Building 1",), ("OP3",))

    def test_engine_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            ExecutionEngine(EvaluationConfig.quick(), jobs=0)


class TestEngineUnits:
    def test_campaign_cache_roundtrip(self, tmp_path):
        config = EvaluationConfig(
            buildings=("Building 3",), rp_granularity_m=8.0, campaign_seed=7
        )
        cache = ArtifactCache(tmp_path)
        cold, digest_cold = simulate_campaign("Building 3", config, cache)
        warm, digest_warm = simulate_campaign("Building 3", config, cache)
        assert digest_cold == digest_warm
        np.testing.assert_array_equal(cold.train.rss_dbm, warm.train.rss_dbm)
        assert cache.stats.hits == 1

    def test_trained_model_cache_roundtrip(self, tmp_path):
        config = EvaluationConfig(
            buildings=("Building 3",), rp_granularity_m=8.0, campaign_seed=7
        )
        cache = ArtifactCache(tmp_path)
        campaign, digest = simulate_campaign("Building 3", config, cache)
        task = ModelTask.create("KNN", "KNN", {"k": 3})
        cold, model_digest = train_localizer(task, campaign, digest, cache)
        warm, warm_digest = train_localizer(task, campaign, digest, cache)
        assert model_digest == warm_digest
        features = campaign.test_for("OP3").features
        np.testing.assert_array_equal(cold.predict(features), warm.predict(features))

    def test_service_trained_on_uses_cache(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        service = LocalizationService.trained_on(
            "Building 1", model="KNN", profile="quick", cache=cache
        )
        assert service.is_fitted
        warm_cache = ArtifactCache(tmp_path)
        again = LocalizationService.trained_on(
            "Building 1", model="KNN", profile="quick", cache=warm_cache
        )
        assert warm_cache.stats.misses == 0
        assert warm_cache.stats.hits == 2  # campaign + trained model
        # Same fitted state: identical predictions on identical queries.
        num_aps = service.localizer._features.shape[1]
        queries = np.random.default_rng(123).random((6, num_aps))
        np.testing.assert_array_equal(
            service.localize(queries).labels, again.localize(queries).labels
        )
