"""Property tests for :func:`repro.eval.engine.cache_key` canonicalisation.

The distributed queue and the artefact cache both rely on cache keys being a
function of *content*, not of Python representation details: two payloads
that describe the same experiment must digest identically even if one spells
a mapping in a different insertion order or a sequence as a tuple instead of
a list.  Conversely any change in actual content must change the digest.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.engine import cache_key

# JSON-able scalar leaves.  NaN is excluded: NaN != NaN makes "same payload"
# undefined, and no spec field legitimately holds one.
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
)

_payloads = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


def _shuffle_dicts(value, rng: random.Random):
    """Same content, different insertion order (and lists become tuples)."""
    if isinstance(value, dict):
        items = [(k, _shuffle_dicts(v, rng)) for k, v in value.items()]
        rng.shuffle(items)
        return dict(items)
    if isinstance(value, list):
        return tuple(_shuffle_dicts(item, rng) for item in value)
    return value


@given(payload=_payloads, seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=200, deadline=None)
def test_digest_ignores_dict_order_and_sequence_type(payload, seed):
    shuffled = _shuffle_dicts(payload, random.Random(seed))
    assert cache_key("prop", payload) == cache_key("prop", shuffled)


@given(payload=st.dictionaries(st.text(min_size=1, max_size=8), _scalars, min_size=1))
@settings(max_examples=100, deadline=None)
def test_digest_changes_when_a_value_changes(payload):
    key = next(iter(payload))
    mutated = dict(payload)
    mutated[key] = (
        "mutated" if mutated[key] != "mutated" else "mutated-differently"
    )
    assert cache_key("prop", payload) != cache_key("prop", mutated)


@given(payload=_payloads)
@settings(max_examples=100, deadline=None)
def test_digest_is_kind_namespaced_and_stable(payload):
    assert cache_key("kind-a", payload) == cache_key("kind-a", payload)
    assert cache_key("kind-a", payload) != cache_key("kind-b", payload)


def test_known_equivalences():
    # The concrete cases the queue depends on, spelled out.
    assert cache_key("k", {"a": 1, "b": (1, 2)}) == cache_key(
        "k", {"b": [1, 2], "a": 1}
    )
    assert cache_key("k", {"nested": {"y": 2.0, "x": 1.0}}) == cache_key(
        "k", {"nested": {"x": 1.0, "y": 2.0}}
    )
    assert cache_key("k", {"a": 1}) != cache_key("k", {"a": 2})
    assert cache_key("k", [1, 2]) == cache_key("k", (1, 2))
