"""Integration tests for the per-figure experiment entry points.

These use an extra-small evaluation profile so the whole module stays fast;
the full-scale regeneration of every artefact lives in ``benchmarks/``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import (
    EvaluationConfig,
    fig1_attack_impact,
    fig5_curriculum,
    table1_devices,
    table2_buildings,
    table3_model_budget,
)


@pytest.fixture(scope="module")
def micro_config():
    return EvaluationConfig(
        buildings=("Building 3",),
        devices=("OP3", "MOTO"),
        attack_methods=("FGSM",),
        epsilons=(0.2,),
        phi_percents=(50.0,),
        rp_granularity_m=8.0,
        attack_seeds=(5,),
        epochs_per_lesson=2,
        baseline_epochs=15,
    )


class TestTables:
    def test_table1_lists_six_devices(self):
        result = table1_devices()
        assert len(result["rows"]) == 6
        assert "Oneplus" in result["text"]

    def test_table2_matches_paper_ap_counts(self):
        result = table2_buildings(rp_granularity_m=4.0)
        ap_counts = {row[0]: row[2] for row in result["rows"]}
        assert ap_counts["Building 5"] == 218
        assert "88 m" in result["text"]

    def test_table3_reports_deployable_budget(self):
        result = table3_model_budget()
        assert result["report"]["embedding_layers"] == 42496
        # Same order of magnitude as the paper's 65,239-parameter model.
        assert 40_000 < result["deployment_total"] < 130_000
        assert result["size_kb"] < 600

    def test_table3_custom_dimensions(self):
        result = table3_model_budget(num_aps=32, num_classes=10)
        assert result["report"]["embedding_layers"] == 2 * (32 * 128 + 128)


class TestFigures:
    def test_fig1_shows_attack_degradation(self, micro_config):
        result = fig1_attack_impact(micro_config)
        for model, stats in result["summary"].items():
            assert stats["attacked"] > stats["clean"], model
        assert "KNN" in result["text"]

    def test_fig5_produces_curves_for_both_variants(self, micro_config):
        result = fig5_curriculum(micro_config)
        curves = result["curves"]["FGSM"]
        assert len(curves["CALLOC"]) == len(micro_config.epsilons)
        assert len(curves["NC"]) == len(micro_config.epsilons)
        assert all(np.isfinite(curves["CALLOC"]))
