"""Unit tests for evaluation metrics and plain-text reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import (
    ErrorStats,
    aggregate_stats,
    ascii_table,
    error_stats,
    format_factor_table,
    improvement_factor,
    results_to_csv,
    text_heatmap,
)


class TestErrorStats:
    def test_basic_statistics(self):
        stats = error_stats([1.0, 2.0, 3.0, 10.0])
        assert stats.mean == pytest.approx(4.0)
        assert stats.worst_case == pytest.approx(10.0)
        assert stats.median == pytest.approx(2.5)
        assert stats.count == 4

    def test_empty_errors_raise(self):
        with pytest.raises(ValueError):
            error_stats([])

    def test_as_dict_round_trip(self):
        stats = error_stats([1.0, 2.0])
        data = stats.as_dict()
        assert data["mean"] == stats.mean
        assert data["count"] == 2

    def test_str_contains_key_numbers(self):
        assert "mean=1.50m" in str(error_stats([1.0, 2.0]))

    def test_aggregate_weights_by_count(self):
        a = error_stats([1.0])
        b = error_stats([3.0, 3.0, 3.0])
        combined = aggregate_stats([a, b])
        assert combined.mean == pytest.approx(2.5)
        assert combined.count == 4
        assert combined.worst_case == pytest.approx(3.0)

    def test_aggregate_empty_raises(self):
        with pytest.raises(ValueError):
            aggregate_stats([])

    def test_improvement_factor(self):
        assert improvement_factor(6.0, 2.0) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            improvement_factor(6.0, 0.0)


class TestReporting:
    def test_ascii_table_alignment_and_content(self):
        table = ascii_table([["CALLOC", 1.234], ["WiDeep", 6.5]], headers=["model", "err"])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "CALLOC" in lines[2] and "1.23" in lines[2]

    def test_ascii_table_handles_empty_rows(self):
        table = ascii_table([], headers=["a", "b"])
        assert "a" in table

    def test_text_heatmap_contains_labels_and_values(self):
        matrix = np.array([[1.0, 2.0], [3.0, 4.0]])
        rendered = text_heatmap(matrix, ["r1", "r2"], ["c1", "c2"], title="demo")
        assert "demo" in rendered
        assert "r1" in rendered and "c2" in rendered
        assert "4.00" in rendered

    def test_text_heatmap_rejects_mismatched_labels(self):
        with pytest.raises(ValueError):
            text_heatmap(np.zeros((2, 2)), ["r1"], ["c1", "c2"])

    def test_text_heatmap_constant_matrix(self):
        rendered = text_heatmap(np.ones((2, 3)), ["a", "b"], ["x", "y", "z"])
        assert "1.00" in rendered

    def test_format_factor_table(self):
        text = format_factor_table(
            {"mean": 1.0, "worst_case": 2.0},
            {"WiDeep": {"mean": 6.0, "worst_case": 9.2}},
        )
        assert "WiDeep" in text
        assert "6.00" in text
        assert "4.60" in text  # worst-case factor

    def test_results_to_csv_round_trip(self, tmp_path):
        rows = [{"model": "CALLOC", "mean": 1.5}, {"model": "DNN", "mean": 3.0}]
        path = results_to_csv(rows, tmp_path / "out.csv")
        content = path.read_text().splitlines()
        assert content[0] == "model,mean"
        assert len(content) == 3

    def test_results_to_csv_empty_raises(self, tmp_path):
        with pytest.raises(ValueError):
            results_to_csv([], tmp_path / "out.csv")
