"""Tests for the robustness-scenario subsystem.

Covers the scenario registry and declarative :class:`ScenarioSpec`, the
per-family transform invariants and seed determinism, the engine integration
(jobs=1 ≡ jobs=N, cold ≡ warm cache for scenario work units), the
unseen-device training split, and the MITM-spoofing replay-baseline fix
(spoofing results independent of engine batch sharding).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import ExperimentSpec, run_experiment
from repro.attacks import SignalSpoofingAttack, ThreatModel, replay_survey
from repro.data import RSS_FLOOR_DBM
from repro.eval.robustness import (
    DEFAULT_SCENARIOS,
    APOutageScenario,
    RogueAPScenario,
    ScenarioSpec,
    TemporalDriftScenario,
    UnseenDeviceScenario,
    stable_seed,
)
from repro.registry import SCENARIOS, available_scenarios, make_scenario


class TestRegistry:
    def test_at_least_five_scenario_families(self):
        names = available_scenarios()
        assert len(names) >= 5
        assert set(DEFAULT_SCENARIOS) <= set(names)

    def test_lookup_is_case_insensitive_and_alias_aware(self):
        assert isinstance(make_scenario("Drift"), TemporalDriftScenario)
        assert isinstance(make_scenario("outage"), APOutageScenario)
        assert isinstance(make_scenario("lodo"), UnseenDeviceScenario)

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            make_scenario("earthquake")

    def test_entries_carry_tags(self):
        assert "environment" in SCENARIOS.entry("drift").tags
        assert "generalization" in SCENARIOS.entry("unseen-device").tags


class TestScenarioSpec:
    def test_create_resolves_and_canonicalises(self):
        spec = ScenarioSpec.create("OUTAGE", params={"num_down": 2}, seed=3)
        assert spec.name == "ap-outage"
        assert spec.param_dict == {"num_down": 2}
        assert spec.build().num_down == 2

    def test_dict_round_trip(self):
        spec = ScenarioSpec.create("drift", params={"shadow_drift_db": 1.5}, seed=7)
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_from_bare_name(self):
        assert ScenarioSpec.from_dict("clean").name == "clean"

    def test_list_valued_params_stay_hashable(self):
        # JSON spec files deliver lists; the spec must stay usable as a dict
        # key (the engine memoises per spec) and round-trip through dicts.
        spec = ScenarioSpec.create("ap-outage", params={"knob": [1, 2]})
        assert hash(spec) is not None
        assert spec.param_dict == {"knob": (1, 2)}
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_display_name_defaults_to_family(self):
        assert ScenarioSpec.create("drift").display_name == "drift"
        assert ScenarioSpec.create("drift", label="drift-hard").display_name == "drift-hard"

    def test_experiment_spec_round_trips_robustness(self):
        spec = ExperimentSpec(
            models=("KNN",),
            scenarios=(),
            robustness=("drift", {"name": "ap-outage", "seed": 5}),
        )
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored.robustness == spec.robustness
        assert restored.robustness[1].seed == 5


class TestStableSeed:
    def test_deterministic_and_part_sensitive(self):
        assert stable_seed("a", 1) == stable_seed("a", 1)
        assert stable_seed("a", 1) != stable_seed("a", 2)
        assert stable_seed("a", 1) != stable_seed("b", 1)


class TestTransforms:
    def test_drift_is_deterministic_per_seed(self, tiny_campaign):
        test = tiny_campaign.test_for("S7")
        a = TemporalDriftScenario(seed=1).transform_test(test, tiny_campaign, "S7")
        b = TemporalDriftScenario(seed=1).transform_test(test, tiny_campaign, "S7")
        c = TemporalDriftScenario(seed=2).transform_test(test, tiny_campaign, "S7")
        np.testing.assert_array_equal(a.rss_dbm, b.rss_dbm)
        assert not np.array_equal(a.rss_dbm, c.rss_dbm)

    def test_drift_preserves_undetected_aps_and_range(self, tiny_campaign):
        test = tiny_campaign.test_for("S7")
        drifted = TemporalDriftScenario(seed=0).transform_test(
            test, tiny_campaign, "S7"
        )
        undetected = test.rss_dbm <= RSS_FLOOR_DBM
        assert (drifted.rss_dbm[undetected] == RSS_FLOOR_DBM).all()
        assert drifted.rss_dbm.min() >= RSS_FLOOR_DBM
        assert drifted.rss_dbm.max() <= 0.0
        threshold = tiny_campaign.config.propagation.detection_threshold_dbm
        observed = drifted.rss_dbm
        assert ((observed == RSS_FLOOR_DBM) | (observed >= threshold)).all()

    def test_drift_is_shared_across_devices(self, tiny_campaign):
        # Drift models the *building* changing: the channel shift applied to a
        # reference point must not depend on which device scans it.
        scenario = TemporalDriftScenario(seed=3)
        s7 = scenario.transform_test(
            tiny_campaign.test_for("S7"), tiny_campaign, "S7"
        )
        op3 = scenario.transform_test(
            tiny_campaign.test_for("OP3"), tiny_campaign, "OP3"
        )
        assert not np.array_equal(s7.rss_dbm, op3.rss_dbm)  # different scans...
        # ...but both derived from one field: identical per-building draw, so
        # re-running either transform reproduces it bit-for-bit.
        again = scenario.transform_test(
            tiny_campaign.test_for("OP3"), tiny_campaign, "OP3"
        )
        np.testing.assert_array_equal(op3.rss_dbm, again.rss_dbm)

    def test_outage_darkens_exactly_k_aps(self, tiny_campaign):
        test = tiny_campaign.test_for("MOTO")
        scenario = APOutageScenario(seed=4, num_down=3)
        out = scenario.transform_test(test, tiny_campaign, "MOTO")
        dark = scenario.dark_aps(test.num_aps, tiny_campaign.building_name)
        assert dark.shape == (3,)
        assert (out.rss_dbm[:, dark] == RSS_FLOOR_DBM).all()
        untouched = np.setdiff1d(np.arange(test.num_aps), dark)
        np.testing.assert_array_equal(
            out.rss_dbm[:, untouched], test.rss_dbm[:, untouched]
        )

    def test_outage_fraction_targets_at_least_one_ap(self, tiny_campaign):
        scenario = APOutageScenario(seed=0, outage_fraction=0.01)
        dark = scenario.dark_aps(8, tiny_campaign.building_name)
        assert dark.shape == (1,)

    def test_zero_outage_fraction_darkens_nothing(self, tiny_campaign):
        test = tiny_campaign.test_for("OP3")
        scenario = APOutageScenario(seed=0, outage_fraction=0.0)
        assert scenario.dark_aps(test.num_aps, tiny_campaign.building_name).size == 0
        out = scenario.transform_test(test, tiny_campaign, "OP3")
        np.testing.assert_array_equal(out.rss_dbm, test.rss_dbm)

    def test_rogue_only_strengthens_cloned_aps(self, tiny_campaign):
        test = tiny_campaign.test_for("LG")
        out = RogueAPScenario(seed=5, num_rogues=2).transform_test(
            test, tiny_campaign, "LG"
        )
        # max(genuine, rogue) can never weaken a beacon...
        assert (out.rss_dbm >= test.rss_dbm - 1e-12).all()
        # ...and exactly the cloned identities may change.
        changed = np.unique(np.nonzero(out.rss_dbm != test.rss_dbm)[1])
        assert 0 < changed.size <= 2

    def test_unseen_device_split_excludes_holdout(self, tiny_campaign):
        lodo = tiny_campaign.leave_one_device_out("S7")
        assert set(np.unique(lodo.train.devices)) == {
            "BLU", "HTC", "LG", "MOTO", "OP3",
        }
        assert list(lodo.test_by_device) == ["S7"]
        scenario = UnseenDeviceScenario()
        assert not scenario.trains_standard_model
        train = scenario.train_dataset(tiny_campaign, "S7")
        assert "S7" not in set(np.unique(train.devices))

    def test_unseen_device_unknown_holdout_raises(self, tiny_campaign):
        with pytest.raises(KeyError):
            tiny_campaign.leave_one_device_out("PIXEL")


@pytest.fixture(scope="module")
def scenario_spec() -> ExperimentSpec:
    """Scenario-only quick-grid spec: drift + AP outage on two models."""
    return ExperimentSpec(
        models=("KNN", "DNN"),
        profile="quick",
        devices=("OP3", "S7"),
        scenarios=(),
        robustness=("drift", "ap-outage"),
    )


@pytest.fixture(scope="module")
def scenario_serial_records(scenario_spec):
    return run_experiment(scenario_spec).to_records()


class TestEngineIntegration:
    def test_records_tag_condition_and_order(self, scenario_spec, scenario_serial_records):
        assert len(scenario_serial_records) == 2 * 2 * 2  # models x devices x specs
        assert [r["scenario"] for r in scenario_serial_records[:2]] == [
            "drift",
            "ap-outage",
        ]
        assert all(r["attack"] == "clean" for r in scenario_serial_records)

    def test_parallel_matches_serial_bit_for_bit(
        self, scenario_spec, scenario_serial_records
    ):
        parallel = run_experiment(scenario_spec, jobs=3)
        assert parallel.to_records() == scenario_serial_records

    def test_warm_cache_is_bit_identical_to_cold(
        self, scenario_spec, scenario_serial_records, tmp_path
    ):
        cache_dir = tmp_path / "cache"
        cold = run_experiment(scenario_spec, cache=cache_dir)
        warm = run_experiment(scenario_spec, jobs=2, cache=cache_dir)
        assert cold.to_records() == scenario_serial_records
        assert warm.to_records() == scenario_serial_records

    def test_self_training_scenario_runs_at_any_job_count(self):
        spec = ExperimentSpec(
            models=("KNN",),
            profile="quick",
            devices=("OP3", "S7"),
            scenarios=(),
            robustness=("unseen-device", "adaptive-blackbox"),
        )
        serial = run_experiment(spec)
        parallel = run_experiment(spec, jobs=2)
        assert parallel.to_records() == serial.to_records()
        attacked = serial.filter(scenario="adaptive-blackbox")
        assert all(r.scenario.method == "FGSM" for r in attacked.records)
        # The unseen-device cell trains a different model than the standard
        # split, so its errors must differ from the clean standard run.
        lodo = serial.filter(scenario="unseen-device")
        assert len(lodo) == 2

    def test_scenario_only_spec_emits_no_attack_grid(self, scenario_serial_records):
        assert all(r["epsilon"] == 0.0 for r in scenario_serial_records)

    def test_scenario_only_plan_builds_no_eval_units(self):
        from repro.eval.engine import ModelTask, build_plan

        plan = build_plan(
            [ModelTask.create("KNN", "KNN", {})],
            (),
            ("Building 1",),
            ("OP3",),
            (ScenarioSpec.create("drift"),),
        )
        assert plan.eval_units == ()
        assert len(plan.scenario_units) == 1
        assert "1 scenario" in plan.describe()

    def test_identity_scenarios_do_not_populate_the_batch_cache(self, tmp_path):
        from repro.eval.engine import ArtifactCache

        spec = ExperimentSpec(
            models=("KNN",),
            profile="quick",
            devices=("OP3",),
            scenarios=(),
            robustness=("clean", "drift"),
        )
        cache = ArtifactCache(tmp_path / "cache")
        run_experiment(spec, cache=cache)
        batches = list((tmp_path / "cache" / "scenario-batch").rglob("*.npz"))
        assert len(batches) == 1  # drift cached, clean served directly


class TestSpoofingBaseline:
    """Regression tests for the shard-dependent MITM-spoofing baseline."""

    def test_replay_from_offline_survey_is_shard_independent(self, tiny_campaign, trained_dnn):
        test = tiny_campaign.test_for("S7")
        features = test.features
        labels = test.labels
        threat = ThreatModel(epsilon=0.3, phi_percent=50.0, seed=11)
        replay = replay_survey(tiny_campaign.train)
        attack = SignalSpoofingAttack(threat, method="FGSM", replay_features=replay)
        whole = attack.perturb(features, labels, trained_dnn)
        half = features.shape[0] // 2
        sharded = np.concatenate(
            [
                attack.perturb(features[:half], labels[:half], trained_dnn),
                attack.perturb(features[half:], labels[half:], trained_dnn),
            ]
        )
        np.testing.assert_array_equal(whole, sharded)

    def test_batch_mean_fallback_depends_on_sharding(self, tiny_campaign, trained_dnn):
        # The legacy behaviour this PR fixes: without the survey baseline the
        # replay value is the per-call batch mean, so shard composition leaks
        # into the perturbation.  Kept as a characterisation of why the
        # engine must always thread replay_features.
        test = tiny_campaign.test_for("S7")
        features = test.features
        labels = test.labels
        threat = ThreatModel(epsilon=0.3, phi_percent=50.0, seed=11)
        attack = SignalSpoofingAttack(threat, method="FGSM")
        whole = attack.perturb(features, labels, trained_dnn)
        half = features.shape[0] // 2
        sharded = np.concatenate(
            [
                attack.perturb(features[:half], labels[:half], trained_dnn),
                attack.perturb(features[half:], labels[half:], trained_dnn),
            ]
        )
        assert not np.array_equal(whole, sharded)

    def test_spoofing_results_identical_across_job_counts(self, tmp_path):
        spec = ExperimentSpec(
            models=("DNN",),
            profile="quick",
            devices=("OP3", "S7"),
            attack_methods=("MITM-spoofing",),
            epsilons=(0.3,),
            phi_percents=(50.0,),
        )
        serial = run_experiment(spec).to_records()
        parallel = run_experiment(spec, jobs=3).to_records()
        assert parallel == serial
        cold = run_experiment(spec, cache=tmp_path / "cache").to_records()
        warm = run_experiment(spec, cache=tmp_path / "cache").to_records()
        assert cold == serial
        assert warm == serial
