"""Unit and integration tests for scenario grids and the experiment runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import KNNLocalizer
from repro.data.devices import device_acronyms
from repro.eval import (
    AttackScenario,
    EvaluationConfig,
    EvaluationRecord,
    ExperimentRunner,
    ResultSet,
    error_stats,
)


class TestAttackScenario:
    def test_clean_detection(self):
        assert AttackScenario(epsilon=0.0).is_clean
        assert AttackScenario(phi_percent=0.0).is_clean
        assert not AttackScenario(epsilon=0.1, phi_percent=10.0).is_clean

    def test_label(self):
        assert AttackScenario(epsilon=0.0).label() == "clean"
        assert "FGSM" in AttackScenario(method="FGSM", epsilon=0.2, phi_percent=30).label()


class TestEvaluationConfig:
    def test_profiles_have_increasing_scope(self):
        quick = EvaluationConfig.quick()
        full = EvaluationConfig.full()
        assert len(quick.buildings) < len(full.buildings)
        assert quick.rp_granularity_m > full.rp_granularity_m

    def test_full_profile_covers_paper_grid(self):
        full = EvaluationConfig.full()
        assert len(full.buildings) == 5
        assert set(full.devices) == set(device_acronyms())
        assert full.epsilons == (0.1, 0.2, 0.3, 0.4, 0.5)

    def test_scenario_expansion_size(self):
        config = EvaluationConfig.quick()
        scenarios = config.scenarios()
        expected = (
            len(config.attack_methods)
            * len(config.epsilons)
            * len(config.phi_percents)
            * len(config.attack_seeds)
        )
        assert len(scenarios) == expected

    def test_scenario_expansion_with_overrides(self):
        config = EvaluationConfig.quick()
        scenarios = config.scenarios(methods=("FGSM",), epsilons=(0.1,), phi_percents=(50.0,))
        assert len(scenarios) == len(config.attack_seeds)
        assert all(s.method == "FGSM" for s in scenarios)


class TestResultSet:
    def _record(self, model="KNN", attack="FGSM", epsilon=0.1, phi=10.0, errors=(1.0, 2.0)):
        scenario = AttackScenario(method=attack, epsilon=epsilon, phi_percent=phi)
        return EvaluationRecord(
            model=model,
            building="Building 1",
            device="OP3",
            scenario=scenario,
            stats=error_stats(list(errors)),
        )

    def test_filter_by_model_and_epsilon(self):
        results = ResultSet([self._record(model="A", epsilon=0.1), self._record(model="B", epsilon=0.3)])
        assert len(results.filter(model="A")) == 1
        assert len(results.filter(epsilon=0.3)) == 1
        assert len(results.filter(model="A", epsilon=0.3)) == 0

    def test_mean_error_is_sample_weighted(self):
        results = ResultSet(
            [self._record(errors=(1.0,)), self._record(errors=(3.0, 3.0, 3.0))]
        )
        assert results.mean_error() == pytest.approx(2.5)

    def test_worst_case(self):
        results = ResultSet([self._record(errors=(1.0, 9.0)), self._record(errors=(2.0,))])
        assert results.worst_case_error() == pytest.approx(9.0)

    def test_empty_resultset_raises(self):
        with pytest.raises(ValueError):
            ResultSet().mean_error()

    def test_models_and_rows(self):
        results = ResultSet([self._record(model="A"), self._record(model="B")])
        assert results.models() == ["A", "B"]
        rows = results.to_rows()
        assert rows[0]["building"] == "Building 1"


@pytest.fixture(scope="module")
def tiny_runner_config():
    return EvaluationConfig(
        buildings=("Building 3",),
        devices=("OP3", "MOTO"),
        attack_methods=("FGSM",),
        epsilons=(0.2,),
        phi_percents=(50.0,),
        rp_granularity_m=8.0,
        attack_seeds=(5,),
        epochs_per_lesson=2,
        baseline_epochs=15,
    )


class TestExperimentRunner:
    def test_campaign_is_cached(self, tiny_runner_config):
        runner = ExperimentRunner(tiny_runner_config)
        assert runner.campaign("Building 3") is runner.campaign("Building 3")

    def test_evaluate_knn_under_attack(self, tiny_runner_config):
        runner = ExperimentRunner(tiny_runner_config)
        scenarios = [
            AttackScenario(epsilon=0.0, phi_percent=0.0),
            AttackScenario(method="FGSM", epsilon=0.3, phi_percent=50.0, seed=5),
        ]
        results = runner.evaluate_model("KNN", lambda: KNNLocalizer(k=3), scenarios)
        # 1 building x 2 devices x 2 scenarios
        assert len(results) == 4
        clean = results.filter(attack="clean").mean_error()
        attacked = results.filter(attack="FGSM").mean_error()
        assert attacked > clean

    def test_surrogate_is_reused_for_non_differentiable_victims(self, tiny_runner_config):
        runner = ExperimentRunner(tiny_runner_config)
        campaign = runner.campaign("Building 3")
        knn = KNNLocalizer(k=3).fit(campaign.train)
        first = runner._gradient_provider(knn, campaign)
        second = runner._gradient_provider(knn, campaign)
        assert first is second

    def test_attacked_dataset_clean_scenario_passthrough(self, tiny_runner_config):
        runner = ExperimentRunner(tiny_runner_config)
        campaign = runner.campaign("Building 3")
        knn = KNNLocalizer(k=3).fit(campaign.train)
        test = campaign.test_for("OP3")
        result = runner.attacked_dataset(knn, test, AttackScenario(epsilon=0.0), campaign)
        assert result is test
