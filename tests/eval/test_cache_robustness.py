"""Corrupt/truncated cache artefacts must read as misses, not crashes.

The cache's own writes are atomic, but a shared cache directory can still
accumulate damaged files from outside (partial rsync between hosts, disk
errors, non-atomic foreign writers).  The contract: a corrupt artefact is
deleted on first read and the lookup reports a miss, so the caller
recomputes once and the cache heals itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.engine import ArtifactCache

DIGEST = "ab" + "0" * 62


@pytest.fixture
def cache(tmp_path) -> ArtifactCache:
    return ArtifactCache(tmp_path / "cache")


def _truncate(path, keep=3) -> None:
    path.write_bytes(path.read_bytes()[:keep])


class TestCorruptPickle:
    def test_truncated_pickle_is_miss_and_deleted(self, cache):
        cache.put_pickle("campaign", DIGEST, {"value": 42})
        path = cache.path_for("campaign", DIGEST, "pkl")
        _truncate(path)
        assert cache.get_pickle("campaign", DIGEST) is None
        assert not path.exists()
        assert cache.stats.misses == 1

    def test_garbage_pickle_is_miss_and_deleted(self, cache):
        path = cache.path_for("campaign", DIGEST, "pkl")
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle at all")
        assert cache.get_pickle("campaign", DIGEST) is None
        assert not path.exists()

    def test_recompute_after_corruption_round_trips(self, cache):
        cache.put_pickle("campaign", DIGEST, {"value": 1})
        _truncate(cache.path_for("campaign", DIGEST, "pkl"))
        assert cache.get_pickle("campaign", DIGEST) is None
        # The caller recomputes and stores again: the cache has healed.
        cache.put_pickle("campaign", DIGEST, {"value": 1})
        assert cache.get_pickle("campaign", DIGEST) == {"value": 1}
        assert cache.stats.hits == 1


class TestCorruptArrays:
    def test_truncated_npz_is_miss_and_deleted(self, cache):
        cache.put_arrays("model", DIGEST, {"w": np.arange(32, dtype=np.float64)})
        path = cache.path_for("model", DIGEST, "npz")
        _truncate(path, keep=10)
        assert cache.get_arrays("model", DIGEST) is None
        assert not path.exists()
        assert cache.stats.misses == 1

    def test_valid_npz_still_hits(self, cache):
        arrays = {"w": np.arange(8, dtype=np.float64)}
        cache.put_arrays("model", DIGEST, arrays)
        loaded = cache.get_arrays("model", DIGEST)
        np.testing.assert_array_equal(loaded["w"], arrays["w"])


class TestCorruptEither:
    def test_corrupt_npz_falls_through_to_pickle(self, cache):
        cache.put_arrays("model", DIGEST, {"w": np.zeros(4)})
        cache.put_pickle("model", DIGEST, {"fallback": True})
        _truncate(cache.path_for("model", DIGEST, "npz"))
        hit = cache.get_either("model", DIGEST)
        assert hit == ("pickle", {"fallback": True})
        assert not cache.path_for("model", DIGEST, "npz").exists()
        assert cache.stats.hits == 1 and cache.stats.misses == 0

    def test_both_corrupt_is_single_miss(self, cache):
        cache.put_arrays("model", DIGEST, {"w": np.zeros(4)})
        cache.put_pickle("model", DIGEST, {"fallback": True})
        _truncate(cache.path_for("model", DIGEST, "npz"))
        _truncate(cache.path_for("model", DIGEST, "pkl"))
        assert cache.get_either("model", DIGEST) is None
        assert cache.stats.misses == 1
        assert not cache.path_for("model", DIGEST, "pkl").exists()
