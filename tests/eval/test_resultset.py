"""Focused coverage for ResultSet querying and EvaluationRecord export.

Satellites of the engine PR: float-tolerant ``ResultSet.filter`` keys,
``error_summary`` edge cases (empty set, single record, mixed clean/attacked
scenarios), and the clean-row ε/ø export fix (a scenario with ε = 0 *or*
ø = 0 carries no perturbation, so its CSV row must not show a phantom attack
strength).
"""

from __future__ import annotations

import pytest

from repro.eval import AttackScenario, EvaluationRecord, ResultSet, error_stats


def record(
    model="KNN",
    building="Building 1",
    device="OP3",
    method="FGSM",
    epsilon=0.1,
    phi=10.0,
    errors=(1.0, 2.0),
):
    return EvaluationRecord(
        model=model,
        building=building,
        device=device,
        scenario=AttackScenario(method=method, epsilon=epsilon, phi_percent=phi),
        stats=error_stats(list(errors)),
    )


class TestFilterFloatTolerance:
    def test_epsilon_matches_after_arithmetic_roundtrip(self):
        results = ResultSet([record(epsilon=0.1 + 0.2)])  # 0.30000000000000004
        assert len(results.filter(epsilon=0.3)) == 1

    def test_phi_matches_after_json_roundtrip(self):
        import json

        phi = json.loads(json.dumps(1.0 / 3.0 * 30.0))
        results = ResultSet([record(phi=10.000000000000002)])
        assert len(results.filter(phi=phi)) == 1

    def test_close_but_distinct_grid_points_do_not_alias(self):
        results = ResultSet([record(epsilon=0.1), record(epsilon=0.2)])
        assert len(results.filter(epsilon=0.1)) == 1
        assert len(results.filter(epsilon=0.15)) == 0

    def test_int_criterion_matches_float_column(self):
        results = ResultSet([record(phi=50.0)])
        assert len(results.filter(phi=50)) == 1

    def test_string_criteria_stay_exact(self):
        results = ResultSet([record(model="KNN"), record(model="KNN-2")])
        assert len(results.filter(model="KNN")) == 1


class TestErrorSummaryEdges:
    def test_empty_set_raises(self):
        with pytest.raises(ValueError, match="empty"):
            ResultSet().error_summary()

    def test_single_record_equals_its_stats(self):
        single = record(errors=(2.0, 4.0))
        summary = ResultSet([single]).error_summary()
        assert summary.mean == pytest.approx(3.0)
        assert summary.worst_case == pytest.approx(4.0)
        assert summary.count == 2

    def test_mixed_clean_and_attacked_weighting(self):
        clean = record(epsilon=0.0, phi=0.0, errors=(1.0,))
        attacked = record(errors=(5.0, 5.0, 5.0))
        summary = ResultSet([clean, attacked]).error_summary()
        assert summary.mean == pytest.approx((1.0 + 15.0) / 4.0)
        assert summary.worst_case == pytest.approx(5.0)
        assert summary.count == 4

    def test_agrees_with_mean_and_worst_case_methods(self):
        results = ResultSet([record(errors=(1.0, 3.0)), record(errors=(7.0,))])
        summary = results.error_summary()
        assert summary.mean == pytest.approx(results.mean_error())
        assert summary.worst_case == pytest.approx(results.worst_case_error())


class TestCleanRowExport:
    def test_clean_scenario_zeroes_epsilon_and_phi_columns(self):
        # ø = 0 with a nominal ε: no perturbation is ever applied, so the
        # exported row must not claim an attack strength.
        row = record(epsilon=0.3, phi=0.0).as_dict()
        assert row["attack"] == "clean"
        assert row["epsilon"] == 0.0
        assert row["phi"] == 0.0

    def test_clean_scenario_via_zero_epsilon(self):
        row = record(epsilon=0.0, phi=50.0).as_dict()
        assert row["attack"] == "clean"
        assert row["epsilon"] == 0.0
        assert row["phi"] == 0.0

    def test_attacked_scenario_keeps_its_operating_point(self):
        row = record(method="PGD", epsilon=0.3, phi=50.0).as_dict()
        assert row["attack"] == "PGD"
        assert row["epsilon"] == 0.3
        assert row["phi"] == 50.0

    def test_filter_epsilon_zero_selects_clean_rows(self):
        results = ResultSet(
            [record(epsilon=0.3, phi=0.0), record(epsilon=0.3, phi=50.0)]
        )
        assert len(results.filter(epsilon=0.0)) == 1
        assert len(results.filter(attack="clean")) == 1

    def test_to_records_is_to_rows(self):
        results = ResultSet([record(), record(model="DNN")])
        assert results.to_records() == results.to_rows()
        assert [row["model"] for row in results.to_records()] == ["KNN", "DNN"]
