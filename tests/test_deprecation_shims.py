"""Regression tests: deprecated shims warn but stay behaviour-identical.

``make_baseline`` and ``ATTACK_REGISTRY`` predate the unified registry
(:mod:`repro.registry`); they must keep working exactly as documented while
emitting :class:`DeprecationWarning` so downstream code migrates.
"""

from __future__ import annotations

import pytest

from repro.attacks import ATTACK_REGISTRY, FGSMAttack, MIMAttack, PGDAttack, ThreatModel
from repro.baselines import KNNLocalizer, make_baseline
from repro.registry import ATTACKS, make_localizer


class TestMakeBaselineShim:
    def test_emits_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="make_baseline is deprecated"):
            make_baseline("KNN", k=3)

    def test_behaviour_identical_to_registry(self):
        with pytest.warns(DeprecationWarning):
            shimmed = make_baseline("KNN", k=5)
        direct = make_localizer("KNN", k=5)
        assert type(shimmed) is type(direct) is KNNLocalizer
        assert shimmed.k == direct.k == 5

    def test_case_insensitive_like_registry(self):
        with pytest.warns(DeprecationWarning):
            assert isinstance(make_baseline("knn"), KNNLocalizer)

    def test_unknown_name_still_raises_keyerror(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(KeyError):
                make_baseline("ResNet")


class TestAttackRegistryShim:
    def test_getitem_warns_and_returns_registry_class(self):
        with pytest.warns(DeprecationWarning, match="ATTACK_REGISTRY is deprecated"):
            cls = ATTACK_REGISTRY["FGSM"]
        assert cls is FGSMAttack
        assert cls is ATTACKS.get("FGSM")

    def test_get_warns_and_matches_dict_semantics(self):
        with pytest.warns(DeprecationWarning):
            assert ATTACK_REGISTRY.get("PGD") is PGDAttack
        with pytest.warns(DeprecationWarning):
            assert ATTACK_REGISTRY.get("CW") is None
        with pytest.warns(DeprecationWarning):
            assert ATTACK_REGISTRY.get("CW", FGSMAttack) is FGSMAttack

    def test_getitem_unknown_key_still_raises_keyerror(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(KeyError):
                ATTACK_REGISTRY["CW"]

    def test_contents_match_registry_factories(self):
        # Iteration/containment stay silent (and warning-free) by design.
        assert set(ATTACK_REGISTRY) == {"FGSM", "PGD", "MIM"}
        assert "FGSM" in ATTACK_REGISTRY
        expected = {"FGSM": FGSMAttack, "PGD": PGDAttack, "MIM": MIMAttack}
        for name, cls in expected.items():
            with pytest.warns(DeprecationWarning):
                assert ATTACK_REGISTRY[name] is cls

    def test_instances_built_from_shim_behave_identically(self):
        threat = ThreatModel(epsilon=0.2, phi_percent=25.0, seed=4)
        with pytest.warns(DeprecationWarning):
            shimmed = ATTACK_REGISTRY["MIM"](threat)
        direct = ATTACKS.create("MIM", threat)
        assert type(shimmed) is type(direct)
        assert shimmed.threat_model == direct.threat_model
