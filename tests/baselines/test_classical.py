"""Unit tests for the classical baselines: KNN, Naive Bayes, GPC."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    GaussianProcessLocalizer,
    KNNLocalizer,
    NaiveBayesLocalizer,
)
from repro.interfaces import localization_errors


class TestLocalizationErrors:
    def test_zero_when_predictions_match(self):
        positions = np.array([[0.0, 0.0], [3.0, 4.0]])
        errors = localization_errors(np.array([0, 1]), np.array([0, 1]), positions)
        np.testing.assert_allclose(errors, 0.0)

    def test_euclidean_distance(self):
        positions = np.array([[0.0, 0.0], [3.0, 4.0]])
        errors = localization_errors(np.array([1]), np.array([0]), positions)
        np.testing.assert_allclose(errors, [5.0])


class TestKNN:
    def test_perfect_on_training_data(self, tiny_campaign):
        knn = KNNLocalizer(k=1).fit(tiny_campaign.train)
        predictions = knn.predict(tiny_campaign.train.features)
        assert (predictions == tiny_campaign.train.labels).mean() == 1.0

    def test_reasonable_cross_device_error(self, trained_knn, tiny_campaign):
        assert trained_knn.mean_error(tiny_campaign.test_all_devices()) < 6.0

    def test_k_larger_than_dataset_is_clamped(self, tiny_campaign):
        knn = KNNLocalizer(k=10_000).fit(tiny_campaign.train)
        assert knn.predict(tiny_campaign.test_for("S7").features).shape[0] > 0

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            KNNLocalizer(k=0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            KNNLocalizer().predict(np.zeros((1, 4)))

    def test_predict_proba_rows_sum_to_one(self, trained_knn, tiny_campaign):
        proba = trained_knn.predict_proba(tiny_campaign.test_for("S7").features)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_worst_case_error_at_least_mean(self, trained_knn, tiny_campaign):
        test = tiny_campaign.test_all_devices()
        assert trained_knn.worst_case_error(test) >= trained_knn.mean_error(test)


class TestNaiveBayes:
    def test_fits_and_predicts(self, tiny_campaign):
        model = NaiveBayesLocalizer().fit(tiny_campaign.train)
        predictions = model.predict_dataset(tiny_campaign.test_for("OP3"))
        assert predictions.shape == (tiny_campaign.num_classes,)

    def test_training_accuracy_is_reasonable(self, tiny_campaign):
        model = NaiveBayesLocalizer().fit(tiny_campaign.train)
        accuracy = (model.predict(tiny_campaign.train.features) == tiny_campaign.train.labels).mean()
        assert accuracy > 0.6

    def test_predict_proba_is_distribution(self, tiny_campaign):
        model = NaiveBayesLocalizer().fit(tiny_campaign.train)
        proba = model.predict_proba(tiny_campaign.test_for("S7").features)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_invalid_smoothing_rejected(self):
        with pytest.raises(ValueError):
            NaiveBayesLocalizer(var_smoothing=0.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            NaiveBayesLocalizer().predict(np.zeros((1, 3)))


class TestGPC:
    def test_fits_and_achieves_low_training_error(self, tiny_campaign):
        model = GaussianProcessLocalizer().fit(tiny_campaign.train)
        predictions = model.predict(tiny_campaign.train.features)
        assert (predictions == tiny_campaign.train.labels).mean() > 0.9

    def test_cross_device_error_is_finite_and_reasonable(self, tiny_campaign):
        model = GaussianProcessLocalizer().fit(tiny_campaign.train)
        assert model.mean_error(tiny_campaign.test_all_devices()) < 8.0

    def test_decision_function_shape(self, tiny_campaign):
        model = GaussianProcessLocalizer().fit(tiny_campaign.train)
        scores = model.decision_function(tiny_campaign.test_for("S7").features)
        assert scores.shape == (tiny_campaign.num_classes, tiny_campaign.num_classes)

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(ValueError):
            GaussianProcessLocalizer(length_scale=0.0)
        with pytest.raises(ValueError):
            GaussianProcessLocalizer(noise=-1.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcessLocalizer().predict(np.zeros((1, 3)))

    def test_predict_proba_is_distribution(self, tiny_campaign):
        model = GaussianProcessLocalizer().fit(tiny_campaign.train)
        proba = model.predict_proba(tiny_campaign.test_for("MOTO").features)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)


class TestGPCGradients:
    def test_loss_gradient_shape_and_direction(self, tiny_campaign):
        model = GaussianProcessLocalizer().fit(tiny_campaign.train)
        test = tiny_campaign.test_for("OP3")
        gradient = model.loss_gradient(test.features, test.labels)
        assert gradient.shape == test.features.shape
        assert np.isfinite(gradient).all()
        # Moving along the gradient (FGSM direction) should not decrease the error.
        perturbed = np.clip(test.features + 0.2 * np.sign(gradient), 0.0, 1.0)
        baseline_error = model.mean_error(test)
        attacked_error = model.mean_error(test.with_rss(perturbed * 100.0 - 100.0))
        assert attacked_error >= baseline_error

    def test_gradient_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcessLocalizer().loss_gradient(np.zeros((1, 3)), np.zeros(1, dtype=int))
