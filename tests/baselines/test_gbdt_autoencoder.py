"""Unit tests for the gradient-boosting and autoencoder substrates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    DecisionTreeRegressor,
    DenoisingAutoencoder,
    GradientBoostedClassifier,
    StackedAutoencoder,
)
from repro.nn import Tensor


class TestDecisionTree:
    def test_fits_piecewise_constant_function(self, rng):
        features = rng.uniform(0, 1, size=(200, 1))
        targets = (features[:, 0] > 0.5).astype(float)
        tree = DecisionTreeRegressor(max_depth=2).fit(features, targets)
        predictions = tree.predict(features)
        assert np.abs(predictions - targets).mean() < 0.1

    def test_respects_max_depth_one_split(self, rng):
        features = rng.uniform(0, 1, size=(100, 2))
        targets = features[:, 0] + features[:, 1]
        tree = DecisionTreeRegressor(max_depth=1).fit(features, targets)
        assert len(np.unique(tree.predict(features))) <= 2

    def test_constant_targets_give_single_leaf(self, rng):
        features = rng.uniform(0, 1, size=(50, 3))
        tree = DecisionTreeRegressor().fit(features, np.full(50, 2.5))
        np.testing.assert_allclose(tree.predict(features), 2.5)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.zeros((1, 2)))

    def test_rejects_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0)

    def test_rejects_mismatched_shapes(self, rng):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(rng.random((10, 2)), rng.random(5))

    def test_max_features_subsampling_still_fits(self, rng):
        features = rng.uniform(0, 1, size=(100, 8))
        targets = features[:, 3]
        tree = DecisionTreeRegressor(max_depth=3, max_features=4, seed=0).fit(features, targets)
        assert np.var(tree.predict(features)) > 0


class TestGradientBoosting:
    def test_separable_classification(self, rng):
        features = rng.normal(size=(150, 4))
        labels = (features[:, 0] > 0).astype(int) + 2 * (features[:, 1] > 0).astype(int)
        model = GradientBoostedClassifier(num_rounds=10, max_depth=2, seed=0).fit(features, labels)
        accuracy = (model.predict(features) == labels).mean()
        assert accuracy > 0.85

    def test_predict_proba_is_distribution(self, rng):
        features = rng.normal(size=(60, 3))
        labels = (features[:, 0] > 0).astype(int)
        model = GradientBoostedClassifier(num_rounds=5, seed=0).fit(features, labels)
        proba = model.predict_proba(features)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)
        assert (proba >= 0).all()

    def test_rejects_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            GradientBoostedClassifier(num_rounds=0)
        with pytest.raises(ValueError):
            GradientBoostedClassifier(learning_rate=0.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GradientBoostedClassifier().predict(np.zeros((1, 3)))

    def test_more_rounds_do_not_hurt_training_accuracy(self, rng):
        features = rng.normal(size=(100, 4))
        labels = (features[:, 0] + features[:, 1] > 0).astype(int)
        small = GradientBoostedClassifier(num_rounds=2, seed=0).fit(features, labels)
        large = GradientBoostedClassifier(num_rounds=12, seed=0).fit(features, labels)
        assert (large.predict(features) == labels).mean() >= (
            small.predict(features) == labels
        ).mean()


class TestAutoencoders:
    def test_reconstruction_loss_decreases(self, rng):
        data = rng.uniform(0, 1, size=(80, 16))
        autoencoder = StackedAutoencoder(16, hidden_dims=(8,), rng=rng)
        history = autoencoder.pretrain(data, epochs=25, seed=0)
        assert history[-1] < history[0]

    def test_transform_shape_is_latent_dim(self, rng):
        data = rng.uniform(0, 1, size=(30, 12))
        autoencoder = StackedAutoencoder(12, hidden_dims=(10, 6), rng=rng)
        assert autoencoder.latent_dim == 6
        assert autoencoder.transform(data).shape == (30, 6)

    def test_forward_output_in_unit_range(self, rng):
        autoencoder = StackedAutoencoder(8, hidden_dims=(4,), rng=rng)
        out = autoencoder(Tensor(rng.uniform(0, 1, size=(5, 8)))).data
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_requires_at_least_one_hidden_layer(self):
        with pytest.raises(ValueError):
            StackedAutoencoder(8, hidden_dims=())

    def test_denoising_autoencoder_trains_with_corruption(self, rng):
        data = rng.uniform(0, 1, size=(60, 10))
        dae = DenoisingAutoencoder(10, hidden_dims=(6,), corruption_std=0.2, rng=rng)
        history = dae.pretrain(data, epochs=20, seed=0)
        assert history[-1] < history[0]

    def test_denoising_autoencoder_rejects_negative_corruption(self):
        with pytest.raises(ValueError):
            DenoisingAutoencoder(8, corruption_std=-0.1)
