"""Unit tests for the neural and composite baselines (DNN, CNN, ANVIL, AdvLoc,
SANGRIA, WiDeep) and the baseline registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    BASELINE_REGISTRY,
    AdvLocLocalizer,
    ANVILLocalizer,
    CNNLocalizer,
    DNNLocalizer,
    SANGRIALocalizer,
    WiDeepLocalizer,
    make_baseline,
)
from repro.interfaces import DifferentiableLocalizer


class TestRegistry:
    def test_contains_paper_baselines(self):
        for name in ("KNN", "GPC", "DNN", "CNN", "AdvLoc", "ANVIL", "SANGRIA", "WiDeep"):
            assert name in BASELINE_REGISTRY

    def test_make_baseline_passes_kwargs(self):
        model = make_baseline("DNN", epochs=5)
        assert model.epochs == 5

    def test_unknown_baseline_raises(self):
        with pytest.raises(KeyError):
            make_baseline("ResNet")


class TestDNN:
    def test_clean_accuracy(self, trained_dnn, tiny_campaign):
        assert trained_dnn.mean_error(tiny_campaign.test_all_devices()) < 5.0

    def test_loss_history_decreases(self, trained_dnn):
        assert trained_dnn.loss_history[-1] < trained_dnn.loss_history[0]

    def test_loss_gradient_shape(self, trained_dnn, tiny_campaign):
        test = tiny_campaign.test_for("OP3")
        gradient = trained_dnn.loss_gradient(test.features, test.labels)
        assert gradient.shape == test.features.shape
        assert np.abs(gradient).sum() > 0

    def test_is_differentiable_localizer(self, trained_dnn):
        assert isinstance(trained_dnn, DifferentiableLocalizer)

    def test_predict_proba_distribution(self, trained_dnn, tiny_campaign):
        proba = trained_dnn.predict_proba(tiny_campaign.test_for("S7").features)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DNNLocalizer().predict(np.zeros((1, 4)))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            DNNLocalizer(epochs=0)
        with pytest.raises(ValueError):
            DNNLocalizer(batch_size=0)


class TestCNN:
    def test_fits_and_predicts(self, tiny_campaign):
        model = CNNLocalizer(channels=4, epochs=10, seed=0).fit(tiny_campaign.train)
        predictions = model.predict_dataset(tiny_campaign.test_for("OP3"))
        assert predictions.shape[0] == tiny_campaign.num_classes
        assert model.mean_error(tiny_campaign.test_for("OP3")) < 10.0


class TestAdvLoc:
    def test_adversarial_augmentation_grows_training_set(self, tiny_campaign):
        model = AdvLocLocalizer(adversarial_fraction=0.5, epochs=10, warmup_epochs=3, seed=0)
        features = tiny_campaign.train.features
        labels = tiny_campaign.train.labels
        model._num_aps = tiny_campaign.train.num_aps
        model._num_classes = tiny_campaign.train.num_classes
        model.network = model.build_network(model._num_aps, model._num_classes)
        augmented_features, augmented_labels = model.prepare_training_data(features, labels)
        expected_extra = int(round(0.5 * features.shape[0]))
        assert augmented_features.shape[0] == features.shape[0] + expected_extra
        assert augmented_labels.shape[0] == augmented_features.shape[0]

    def test_zero_fraction_is_plain_dnn_data(self, tiny_campaign):
        model = AdvLocLocalizer(adversarial_fraction=0.0, epochs=5, seed=0)
        model._num_aps = tiny_campaign.train.num_aps
        model._num_classes = tiny_campaign.train.num_classes
        model.network = model.build_network(model._num_aps, model._num_classes)
        features, labels = model.prepare_training_data(
            tiny_campaign.train.features, tiny_campaign.train.labels
        )
        assert features.shape == tiny_campaign.train.features.shape

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            AdvLocLocalizer(adversarial_fraction=1.5)

    def test_end_to_end_fit_predict(self, tiny_campaign):
        model = AdvLocLocalizer(epochs=12, warmup_epochs=4, seed=0).fit(tiny_campaign.train)
        assert model.mean_error(tiny_campaign.test_all_devices()) < 6.0


class TestANVIL:
    def test_fit_predict_and_gradient(self, tiny_campaign):
        model = ANVILLocalizer(embed_dim=16, num_groups=2, num_heads=2, epochs=15, seed=0)
        model.fit(tiny_campaign.train)
        assert model.mean_error(tiny_campaign.test_all_devices()) < 6.0
        gradient = model.loss_gradient(
            tiny_campaign.test_for("OP3").features, tiny_campaign.test_for("OP3").labels
        )
        assert gradient.shape == tiny_campaign.test_for("OP3").features.shape


class TestSANGRIA:
    def test_fit_predict(self, tiny_campaign):
        model = SANGRIALocalizer(
            hidden_dims=(32, 16), pretrain_epochs=10, num_rounds=5, seed=0
        ).fit(tiny_campaign.train)
        assert model.mean_error(tiny_campaign.test_all_devices()) < 8.0

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            SANGRIALocalizer().predict(np.zeros((1, 4)))

    def test_predict_proba_distribution(self, tiny_campaign):
        model = SANGRIALocalizer(
            hidden_dims=(16,), pretrain_epochs=5, num_rounds=3, seed=0
        ).fit(tiny_campaign.train)
        proba = model.predict_proba(tiny_campaign.test_for("S7").features)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)


class TestWiDeep:
    def test_fit_predict(self, tiny_campaign):
        model = WiDeepLocalizer(hidden_dims=(32,), pretrain_epochs=10, seed=0).fit(
            tiny_campaign.train
        )
        assert model.mean_error(tiny_campaign.test_all_devices()) < 8.0

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            WiDeepLocalizer().predict(np.zeros((1, 4)))


class TestWiDeepGradients:
    def test_loss_gradient_chains_through_encoder(self, tiny_campaign):
        model = WiDeepLocalizer(hidden_dims=(16,), pretrain_epochs=8, seed=0).fit(
            tiny_campaign.train
        )
        test = tiny_campaign.test_for("LG")
        gradient = model.loss_gradient(test.features, test.labels)
        assert gradient.shape == test.features.shape
        assert np.isfinite(gradient).all()
        assert np.abs(gradient).sum() > 0

    def test_gradient_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            WiDeepLocalizer().loss_gradient(np.zeros((1, 4)), np.zeros(1, dtype=int))


class TestEpochLossWeighting:
    def test_partial_final_batch_is_sample_weighted(self, tiny_campaign, monkeypatch):
        """Regression: the epoch loss is a per-sample mean, not a per-batch mean.

        With a batch size that does not divide the training set, the final
        short batch used to count as a full batch's worth of loss, biasing
        ``loss_history`` toward whatever samples land in the remainder.  Spy
        on the per-batch losses and check the recorded epoch value is their
        size-weighted average.
        """
        from repro.nn import fastpath

        train = tiny_campaign.train
        num_samples = train.features.shape[0]
        batch_size = num_samples - 1  # batches of (n - 1) and 1
        recorded = []
        original = fastpath.train_step_ce

        def spy(*args, **kwargs):
            loss = original(*args, **kwargs)
            recorded.append(loss)
            return loss

        monkeypatch.setattr(fastpath, "train_step_ce", spy)
        model = DNNLocalizer(
            hidden_dims=(16,), epochs=1, batch_size=batch_size, seed=0
        ).fit(train)
        assert len(recorded) == 2
        weighted = np.average(recorded, weights=[num_samples - 1, 1])
        assert model.loss_history[0] == pytest.approx(weighted, abs=0.0)
        # The plain per-batch mean is measurably different on this data, so
        # the test genuinely distinguishes the two weightings.
        assert model.loss_history[0] != pytest.approx(np.mean(recorded), abs=1e-12)
