"""Tests for the declarative experiment API (``repro.api``)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import (
    ExperimentSpec,
    LocalizationService,
    ModelSpec,
    default_model_params,
    model_factory,
    run_experiment,
)
from repro.baselines import KNNLocalizer
from repro.eval import AttackScenario, EvaluationConfig, ExperimentRunner, fig6_spec
from repro.eval.metrics import error_stats
from repro.eval.runner import EvaluationRecord, ResultSet
from repro.interfaces import ErrorSummary

#: A deliberately tiny grid so the end-to-end tests stay fast.
SMALL_CONFIG = EvaluationConfig(
    buildings=("Building 1",),
    devices=("OP3",),
    attack_methods=("FGSM",),
    epsilons=(0.3,),
    phi_percents=(50.0,),
    rp_granularity_m=4.0,
    attack_seeds=(11,),
    baseline_epochs=5,
)


class TestModelSpec:
    def test_from_bare_name(self):
        spec = ModelSpec.from_dict("KNN")
        assert spec.name == "KNN"
        assert spec.display_name == "KNN"
        assert spec.to_dict() == {"name": "KNN"}

    def test_round_trip_with_params_and_label(self):
        spec = ModelSpec("CALLOC", params={"use_curriculum": False}, label="NC")
        assert ModelSpec.from_dict(spec.to_dict()) == spec
        assert spec.display_name == "NC"

    def test_factory_merges_profile_defaults_and_overrides(self):
        config = SMALL_CONFIG
        dnn = model_factory(ModelSpec("DNN"), config)()
        assert dnn.epochs == config.baseline_epochs
        assert dnn.seed == config.model_seed
        dnn = model_factory(ModelSpec("DNN", params={"epochs": 2}), config)()
        assert dnn.epochs == 2

    def test_default_params_cover_calloc(self):
        params = default_model_params("CALLOC", SMALL_CONFIG)
        assert params == {
            "epochs_per_lesson": SMALL_CONFIG.epochs_per_lesson,
            "seed": SMALL_CONFIG.model_seed,
        }


class TestExperimentSpec:
    def _full_spec(self) -> ExperimentSpec:
        return ExperimentSpec(
            models=(
                ModelSpec("CALLOC"),
                ModelSpec("CALLOC", params={"use_curriculum": False}, label="NC"),
                "KNN",
            ),
            profile="standard",
            buildings=("Building 1",),
            devices=("OP3", "S7"),
            scenarios=(
                AttackScenario(method="FGSM", epsilon=0.0, phi_percent=0.0),
                AttackScenario(method="PGD", epsilon=0.3, phi_percent=50.0, seed=13),
            ),
            name="round-trip",
        )

    def test_dict_round_trip(self):
        spec = self._full_spec()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = self._full_spec()
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored == spec
        # and the JSON itself is plain data
        data = json.loads(spec.to_json())
        assert data["profile"] == "standard"
        assert data["models"][2] == {"name": "KNN"}

    def test_file_round_trip(self, tmp_path):
        spec = self._full_spec()
        path = spec.save(tmp_path / "spec.json")
        assert ExperimentSpec.load(path) == spec

    def test_grid_round_trip_without_scenarios(self):
        spec = ExperimentSpec(
            models=("KNN",),
            attack_methods=("FGSM",),
            epsilons=(0.1, 0.3),
            phi_percents=(50.0,),
        )
        restored = ExperimentSpec.from_dict(spec.to_dict())
        assert restored == spec
        scenarios = restored.resolve_scenarios(SMALL_CONFIG)
        assert {s.epsilon for s in scenarios} == {0.1, 0.3}

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown profile"):
            ExperimentSpec(models=("KNN",), profile="huge")

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment spec fields"):
            ExperimentSpec.from_dict({"models": ["KNN"], "modells": []})

    def test_validate_rejects_unknown_model(self):
        with pytest.raises(KeyError):
            ExperimentSpec(models=("ResNet",)).validate()

    def test_duplicate_labels_rejected(self):
        spec = ExperimentSpec(models=("KNN", "KNN"))
        with pytest.raises(ValueError, match="duplicate model label"):
            spec.resolve_factories(SMALL_CONFIG)

    def test_empty_models_rejected(self):
        with pytest.raises(ValueError, match="no models"):
            ExperimentSpec().resolve_factories(SMALL_CONFIG)

    def test_fig6_spec_round_trips_and_resolves(self):
        spec = fig6_spec()
        assert ExperimentSpec.from_json(spec.to_json()) == spec
        factories = spec.resolve_factories(SMALL_CONFIG)
        assert list(factories) == ["CALLOC", "AdvLoc", "SANGRIA", "ANVIL", "WiDeep"]


class TestRunSpec:
    def test_spec_execution_matches_legacy_path(self):
        """runner.run(spec-from-JSON) == the factory-dict path, record for record."""
        config = SMALL_CONFIG
        legacy = ExperimentRunner(config).evaluate_models(
            {"KNN": lambda: KNNLocalizer()}, config.scenarios()
        )
        spec = ExperimentSpec.from_json(json.dumps({"models": ["KNN"]}))
        fresh = ExperimentRunner(config).run(spec)
        assert len(fresh) == len(legacy) > 0
        for got, expected in zip(fresh.records, legacy.records):
            assert got.model == expected.model
            assert got.scenario == expected.scenario
            assert got.stats == expected.stats

    def test_run_experiment_uses_spec_profile(self, monkeypatch):
        captured = {}

        def fake_run(self, spec):
            captured["config"] = self.config
            return ResultSet()

        monkeypatch.setattr(ExperimentRunner, "run", fake_run)
        spec = ExperimentSpec(models=("KNN",), profile="standard")
        run_experiment(spec)
        assert captured["config"] == EvaluationConfig.standard()


class TestResultSetHelpers:
    def _record(self, epsilon: float, errors) -> EvaluationRecord:
        return EvaluationRecord(
            model="KNN",
            building="Building 1",
            device="OP3",
            scenario=AttackScenario(method="FGSM", epsilon=epsilon, phi_percent=50.0),
            stats=error_stats(errors),
        )

    def test_filter_tolerates_float_rounding(self):
        # 0.1 + 0.2 != 0.3 exactly; filter must still match.
        results = ResultSet([self._record(0.1 + 0.2, [1.0])])
        assert len(results.filter(epsilon=0.3)) == 1
        assert len(results.filter(epsilon=0.4)) == 0
        # exact and string criteria still behave
        assert len(results.filter(model="KNN", attack="FGSM")) == 1
        assert len(results.filter(model="DNN")) == 0

    def test_error_summary_single_pass_matches_pairwise(self):
        results = ResultSet(
            [self._record(0.1, [1.0, 3.0]), self._record(0.3, [2.0, 2.0, 8.0])]
        )
        summary = results.error_summary()
        assert isinstance(summary, ErrorSummary)
        assert summary.mean == pytest.approx(results.mean_error())
        assert summary.worst_case == results.worst_case_error()
        assert summary.count == 5

    def test_error_summary_empty_raises(self):
        with pytest.raises(ValueError):
            ResultSet().error_summary()


class TestLocalizerErrorSummary:
    def test_matches_individual_metrics(self, trained_knn, tiny_campaign):
        test = tiny_campaign.test_for("S7")
        summary = trained_knn.error_summary(test)
        assert summary.mean == pytest.approx(trained_knn.mean_error(test))
        assert summary.worst_case == pytest.approx(trained_knn.worst_case_error(test))
        assert summary.count == test.num_samples


class TestLocalizationService:
    def test_localize_matches_direct_predict(self, tiny_campaign):
        service = LocalizationService("KNN", params={"k": 3}, batch_size=7)
        assert not service.is_fitted
        service.fit(tiny_campaign.train)
        test = tiny_campaign.test_for("S7")
        result = service.localize(test)
        np.testing.assert_array_equal(
            result.labels, service.localizer.predict(test.features)
        )
        np.testing.assert_allclose(
            result.coordinates, test.rp_positions[result.labels]
        )
        assert np.isfinite(result.error_estimate).all()
        assert (result.error_estimate >= 0).all()
        assert result.probabilities.shape == (len(result), test.num_classes)

    def test_single_fingerprint_promoted_to_batch(self, tiny_campaign):
        service = LocalizationService("KNN").fit(tiny_campaign.train)
        single = tiny_campaign.test_for("S7").features[0]
        result = service.localize(single)
        assert len(result) == 1
        assert result.coordinates.shape == (1, 2)

    def test_batching_is_invisible(self, tiny_campaign):
        test = tiny_campaign.test_for("S7")
        big = LocalizationService("KNN", batch_size=10_000).fit(tiny_campaign.train)
        small = LocalizationService("KNN", batch_size=3).fit(tiny_campaign.train)
        np.testing.assert_array_equal(
            big.localize(test).labels, small.localize(test).labels
        )

    def test_localize_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fitted"):
            LocalizationService("KNN").localize(np.zeros((1, 4)))

    def test_empty_batch(self, tiny_campaign):
        service = LocalizationService("KNN").fit(tiny_campaign.train)
        result = service.localize(np.empty((0, tiny_campaign.train.num_aps)))
        assert len(result) == 0
        assert result.labels.shape == (0,)
        assert result.coordinates.shape == (0, 2)
        assert result.error_estimate.shape == (0,)

    def test_wrong_ap_count_raises_clear_error(self, tiny_campaign):
        service = LocalizationService("KNN").fit(tiny_campaign.train)
        with pytest.raises(ValueError, match="APs"):
            service.localize(np.zeros((2, tiny_campaign.train.num_aps + 1)))

    def test_partial_predict_proba_never_misaligns(self, tiny_campaign):
        """Regression: a model returning proba for some chunks and None for
        others must not silently misalign probabilities with labels."""
        test = tiny_campaign.test_for("S7")
        reference = LocalizationService("KNN", params={"k": 3}).fit(
            tiny_campaign.train
        )
        expected_labels = reference.localize(test.features).labels

        class FlakyProba:
            """Wraps a fitted KNN; predict_proba answers only every other chunk."""

            def __init__(self, inner):
                self._inner = inner
                self._calls = 0

            def fit(self, dataset):
                self._inner.fit(dataset)
                return self

            def predict(self, features):
                return self._inner.predict(features)

            def predict_proba(self, features):
                self._calls += 1
                if self._calls % 2 == 0:
                    return None
                return self._inner.predict_proba(features)

        service = LocalizationService(
            "KNN", params={"k": 3}, batch_size=3, _localizer=FlakyProba(reference.localizer)
        )
        service.fit(tiny_campaign.train)
        result = service.localize(test.features)
        # Labels stay correct and aligned; probabilities are dropped wholesale
        # (None) instead of silently covering only the answered chunks.
        np.testing.assert_array_equal(result.labels, expected_labels)
        assert result.probabilities is None
        assert np.isnan(result.error_estimate).all()

    def test_knn_save_load_identical_predictions(self, tiny_campaign, tmp_path):
        service = LocalizationService("KNN", params={"k": 3})
        service.fit(tiny_campaign.train)
        test = tiny_campaign.test_for("BLU")
        path = service.save(tmp_path / "knn_service.npz")
        restored = LocalizationService.load(path)
        assert restored.model_name == "KNN"
        assert restored.params == {"k": 3}
        assert restored.is_fitted
        np.testing.assert_array_equal(
            restored.localize(test).labels, service.localize(test).labels
        )

    def test_calloc_save_load_identical_predictions(
        self, trained_calloc, tiny_campaign, tmp_path
    ):
        params = {
            "embed_dim": 32,
            "attention_dim": 16,
            "num_lessons": 4,
            "epochs_per_lesson": 3,
            "seed": 0,
        }
        service = LocalizationService("CALLOC", params=params)
        # Adopt the session-scoped fitted model instead of retraining.
        service.localizer = trained_calloc
        service._rp_positions = np.asarray(tiny_campaign.train.rp_positions)
        test = tiny_campaign.test_for("S7")
        path = service.save(tmp_path / "calloc_service.npz")
        restored = LocalizationService.load(path)
        np.testing.assert_array_equal(
            restored.localize(test).labels, trained_calloc.predict(test.features)
        )
        np.testing.assert_allclose(
            restored.localizer.predict_proba(test.features),
            trained_calloc.predict_proba(test.features),
        )

    def test_save_requires_state_protocol(self, tiny_campaign):
        service = LocalizationService("NaiveBayes")
        with pytest.raises(RuntimeError, match="unfitted"):
            service.save("unused.npz")
        service.fit(tiny_campaign.train)
        with pytest.raises(TypeError, match="persistence"):
            service.save("unused.npz")

    def test_save_rejects_non_json_params_naming_the_key(self, tiny_campaign, tmp_path):
        """Satellite: non-JSON params fail fast with the offending key, not
        deep inside json.dumps."""
        service = LocalizationService("KNN", params={"k": 3})
        service.fit(tiny_campaign.train)
        service.params["weights"] = np.arange(3)  # ndarray: not JSON-serializable
        with pytest.raises(TypeError, match="'weights'"):
            service.save(tmp_path / "bad.npz")
        # No partial archive was written.
        assert not (tmp_path / "bad.npz").exists()
        del service.params["weights"]
        assert service.save(tmp_path / "good.npz").exists()

    def test_state_arrays_round_trip(self, tiny_campaign):
        service = LocalizationService("KNN", params={"k": 3}).fit(tiny_campaign.train)
        test = tiny_campaign.test_for("S7")
        restored = LocalizationService.from_state_arrays(service.state_arrays())
        np.testing.assert_array_equal(
            restored.localize(test).labels, service.localize(test).labels
        )

    def test_evaluate_returns_error_summary(self, tiny_campaign):
        service = LocalizationService("KNN").fit(tiny_campaign.train)
        test = tiny_campaign.test_for("S7")
        summary = service.evaluate(test)
        assert isinstance(summary, ErrorSummary)
        assert summary.count == test.num_samples
