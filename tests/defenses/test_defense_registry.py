"""Tests for the defense registry, DefenseSpec, and spec-time validation."""

from __future__ import annotations

import pytest

from repro.api import ExperimentSpec
from repro.defenses import (
    CurriculumAdversarialDefense,
    Defense,
    DefenseSpec,
    FingerprintDetectorDefense,
    InputNoiseDefense,
    NoDefense,
    PGDAdversarialTrainingDefense,
)
from repro.registry import (
    DEFENSES,
    RegistryError,
    available_defenses,
    make_defense,
)


class TestDefenseRegistry:
    def test_all_families_registered(self):
        assert set(available_defenses()) >= {
            "none",
            "curriculum",
            "pgd-adversarial",
            "input-noise",
            "detector",
        }

    def test_make_defense_builds_instances(self):
        assert isinstance(make_defense("curriculum"), CurriculumAdversarialDefense)
        assert isinstance(make_defense("pgd-adversarial"), PGDAdversarialTrainingDefense)
        assert isinstance(make_defense("input-noise"), InputNoiseDefense)
        assert isinstance(make_defense("detector"), FingerprintDetectorDefense)
        assert isinstance(make_defense("none"), NoDefense)

    def test_aliases_and_case_insensitivity(self):
        assert isinstance(
            make_defense("curriculum-adversarial"), CurriculumAdversarialDefense
        )
        assert isinstance(make_defense("randomized-smoothing"), InputNoiseDefense)
        assert isinstance(make_defense("ADVERSARIAL-TRAINING"), PGDAdversarialTrainingDefense)
        assert isinstance(make_defense("undefended"), NoDefense)

    def test_unknown_defense_raises_with_suggestion(self):
        with pytest.raises(RegistryError) as excinfo:
            make_defense("curiculum")
        assert "unknown defense" in str(excinfo.value)
        assert "curriculum" in str(excinfo.value)

    def test_tags_partition_families(self):
        training = available_defenses(tag="training")
        assert "curriculum" in training and "detector" not in training
        assert available_defenses(tag="inference") == ["detector"]

    def test_catalog_entries(self):
        catalog = DEFENSES.catalog()
        names = {entry["name"] for entry in catalog}
        assert "curriculum" in names
        assert all(entry["summary"] for entry in catalog)

    def test_hook_flags(self):
        assert make_defense("curriculum").hardens_training
        assert not make_defense("curriculum").guards_inference
        detector = make_defense("detector")
        assert detector.guards_inference and not detector.hardens_training
        none = make_defense("none")
        assert not none.hardens_training and not none.guards_inference


class TestDefenseSpec:
    def test_round_trip_through_dict(self):
        spec = DefenseSpec.create(
            "curriculum", params={"num_lessons": 4}, seed=3, label="cur4"
        )
        restored = DefenseSpec.from_dict(spec.to_dict())
        assert restored == spec
        assert restored.display_name == "cur4"

    def test_from_bare_name_resolves_aliases(self):
        spec = DefenseSpec.from_dict("smoothing")
        assert spec.name == "input-noise"

    def test_build_applies_params_and_seed(self):
        defense = DefenseSpec.create(
            "detector", params={"target_fpr": 0.05, "action": "reject"}, seed=9
        ).build()
        assert isinstance(defense, FingerprintDetectorDefense)
        assert defense.target_fpr == 0.05
        assert defense.rejects
        assert defense.seed == 9

    def test_spec_is_hashable(self):
        assert len({DefenseSpec.create("none"), DefenseSpec.create("none")}) == 1

    def test_from_dict_revalidates_existing_specs(self):
        """Hand-built specs are re-resolved, not passed through unchecked."""
        with pytest.raises(KeyError, match="unknown defense"):
            DefenseSpec.from_dict(DefenseSpec(name="curiculum"))
        canonical = DefenseSpec.from_dict(DefenseSpec(name="undefended"))
        assert canonical.name == "none"

    def test_instance_spec_round_trips_config(self):
        defense = FingerprintDetectorDefense(target_fpr=0.02, action="reject", seed=5)
        rebuilt = defense.spec().build()
        assert rebuilt.target_fpr == 0.02
        assert rebuilt.action == "reject"
        assert rebuilt.seed == 5


class TestSpecConstructionValidation:
    """Satellite: unknown component names fail at spec construction time."""

    def test_unknown_model_rejected_at_construction(self):
        with pytest.raises(KeyError, match="unknown localizer 'ResNet'"):
            ExperimentSpec(models=("ResNet",))

    def test_unknown_attack_method_rejected_at_construction(self):
        with pytest.raises(KeyError, match="unknown attack 'CW'"):
            ExperimentSpec(models=("KNN",), attack_methods=("CW",))

    def test_unknown_scenario_method_rejected_at_construction(self):
        with pytest.raises(KeyError, match="unknown attack"):
            ExperimentSpec(
                models=("KNN",),
                scenarios=({"method": "DeepFool", "epsilon": 0.1, "phi_percent": 10.0},),
            )

    def test_unknown_robustness_scenario_rejected_at_construction(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            ExperimentSpec(models=("KNN",), robustness=("earthquake",))

    def test_unknown_defense_rejected_at_construction(self):
        with pytest.raises(KeyError, match="unknown defense"):
            ExperimentSpec(models=("KNN",), defenses=("armor",))

    def test_valid_spec_round_trips_defenses_through_json(self):
        spec = ExperimentSpec(
            models=("DNN",),
            defenses=("none", {"name": "curriculum", "params": {"num_lessons": 3}}),
        )
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored == spec
        assert [d.name for d in restored.defenses] == ["none", "curriculum"]

    def test_duplicate_model_defense_pairs_rejected(self):
        spec = ExperimentSpec(models=("DNN",), defenses=("curriculum", "curriculum"))
        with pytest.raises(ValueError, match="duplicate model label"):
            spec.resolve_model_tasks(spec.config())

    def test_none_defense_maps_to_undefended_task(self):
        spec = ExperimentSpec(models=("DNN",), defenses=("none", "curriculum"))
        tasks = spec.resolve_model_tasks(spec.config())
        assert [t.defense_label for t in tasks] == ["none", "curriculum"]
        assert tasks[0].defense is None
        assert tasks[1].defense is not None
