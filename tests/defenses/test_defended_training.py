"""Defended training through the execution engine: determinism + defense column."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import ExperimentSpec, LocalizationService, run_experiment
from repro.eval.engine import ArtifactCache, ModelTask, cache_key

#: Small defended experiment: one cheap DNN under three defense rows.
DEFENSES = (
    "none",
    {"name": "curriculum", "params": {"num_lessons": 3, "epochs_per_lesson": 1}},
    {"name": "input-noise", "params": {"copies": 1}},
)


@pytest.fixture(scope="module")
def defended_spec() -> ExperimentSpec:
    return ExperimentSpec(
        models=({"name": "DNN", "params": {"hidden_dims": [16], "epochs": 4}},),
        profile="quick",
        devices=("OP3",),
        attack_methods=("FGSM",),
        epsilons=(0.3,),
        phi_percents=(50.0,),
        defenses=DEFENSES,
    )


@pytest.fixture(scope="module")
def serial_records(defended_spec):
    return run_experiment(defended_spec).to_records()


class TestDefendedDeterminism:
    def test_records_carry_defense_column(self, serial_records):
        defenses = {row["defense"] for row in serial_records}
        assert defenses == {"none", "curriculum", "input-noise"}
        assert all("defense" in row for row in serial_records)

    def test_parallel_matches_serial_bit_for_bit(self, defended_spec, serial_records):
        parallel = run_experiment(defended_spec, jobs=3)
        assert parallel.to_records() == serial_records

    def test_warm_cache_is_bit_identical_to_cold(
        self, defended_spec, serial_records, tmp_path
    ):
        cache_dir = tmp_path / "cache"
        cold = run_experiment(defended_spec, cache=cache_dir)
        warm = run_experiment(defended_spec, cache=cache_dir)
        assert cold.to_records() == serial_records
        assert warm.to_records() == serial_records

    def test_filter_by_defense(self, defended_spec, serial_records):
        results = run_experiment(defended_spec)
        hardened = results.filter(defense="curriculum")
        assert len(hardened) == len(serial_records) // len(DEFENSES)
        assert {r.defense for r in hardened.records} == {"curriculum"}


class TestCacheKeying:
    def test_none_defense_shares_undefended_digest(self):
        """The 'none' row aliases the plain undefended artefacts on purpose."""
        undefended = ModelTask.create("DNN", "DNN", {"epochs": 4})
        assert undefended.defense is None
        payload_a = cache_key("model", {"model": "DNN", "params": {"epochs": 4}, "campaign": "x"})
        # resolve_model_tasks maps the "none" family to defense=None, so the
        # payload (and digest) is the same object shape in both cases.
        spec = ExperimentSpec(
            models=({"name": "DNN", "params": {"epochs": 4}},), defenses=("none",)
        )
        task = spec.resolve_model_tasks(spec.config())[0]
        assert task.defense is None
        assert task.key == ("DNN", "none")
        assert payload_a  # digest computed without error

    def test_defended_task_digest_differs(self):
        spec = ExperimentSpec(
            models=("DNN",), defenses=("none", "curriculum")
        )
        plain, defended = spec.resolve_model_tasks(spec.config())
        from repro.eval.engine import _model_payload

        assert cache_key("model", _model_payload(plain, "c")) != cache_key(
            "model", _model_payload(defended, "c")
        )

    def test_inference_only_defense_shares_model_digest(self):
        """A detector guard never changes training, so no retrain/duplicate."""
        spec = ExperimentSpec(models=("DNN",), defenses=("none", "detector"))
        plain, guarded = spec.resolve_model_tasks(spec.config())
        from repro.eval.engine import _model_payload

        assert guarded.defense is not None  # still labels records "detector"
        assert cache_key("model", _model_payload(plain, "c")) == cache_key(
            "model", _model_payload(guarded, "c")
        )

    def test_duplicate_task_keys_rejected_by_plan(self):
        from repro.eval.engine import build_plan

        task = ModelTask.create("DNN", "DNN", {}, defense="curriculum")
        with pytest.raises(ValueError, match="duplicate"):
            build_plan([task, task], (), ("Building 1",), ("OP3",))


class TestDefendedServiceTrainedOn:
    def test_trained_on_with_detector_attaches_guard(self, tmp_path):
        service = LocalizationService.trained_on(
            "Building 1",
            model="KNN",
            params={"k": 3},
            defense="detector",
            cache=ArtifactCache(tmp_path / "cache"),
        )
        assert service.defense_name == "detector"
        assert service.guard is not None and service.guard.guard_is_fitted
        # Round-trip through the canonical archive restores the guard.
        restored = LocalizationService.from_state_arrays(service.state_arrays())
        assert restored.defense_name == "detector"
        assert restored.guard is not None and restored.guard.guard_is_fitted
        np.testing.assert_array_equal(
            restored.guard.guard_state_arrays()["references"],
            service.guard.guard_state_arrays()["references"],
        )

    def test_trained_on_none_defense_is_plain(self, tmp_path):
        service = LocalizationService.trained_on(
            "Building 1",
            model="KNN",
            params={"k": 3},
            defense="none",
            cache=ArtifactCache(tmp_path / "cache"),
        )
        assert service.defense_name == "none"
        assert service.guard is None
