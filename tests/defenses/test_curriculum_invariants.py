"""Curriculum/LessonBuilder invariants for every gradient-capable localizer.

The paper's curriculum guarantees (Sec. IV.A) were previously only exercised
through CALLOC's own trainer; the defense subsystem applies the same lesson
machinery to any gradient-capable model, so the invariants are asserted here
against each of them:

* lesson 1 is 100 % clean (ø = 0, original fraction 1);
* the attacked and original fractions of every lesson sum to 1;
* ε is fixed at 0.1 across the whole curriculum;
* ø is monotone non-decreasing over the lessons.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.defenses import (
    Curriculum,
    CurriculumAdversarialDefense,
    DefenseError,
    LessonBuilder,
)
from repro.registry import make_localizer

#: Cheap constructor params per gradient-capable registry name.
GRADIENT_CAPABLE = {
    "CALLOC": {
        "embed_dim": 16,
        "attention_dim": 8,
        "num_lessons": 2,
        "epochs_per_lesson": 1,
        "seed": 0,
    },
    "DNN": {"hidden_dims": (16,), "epochs": 2, "seed": 0},
    "CNN": {"channels": 4, "epochs": 2, "seed": 0},
    "ANVIL": {"embed_dim": 16, "num_heads": 2, "epochs": 2, "seed": 0},
    "AdvLoc": {"hidden_dims": (16,), "epochs": 2, "warmup_epochs": 1, "seed": 0},
}


@pytest.fixture(scope="module")
def fitted_models(tiny_campaign):
    """One fitted instance per gradient-capable localizer (shared, read-only)."""
    models = {}
    for name, params in GRADIENT_CAPABLE.items():
        models[name] = make_localizer(name, **params).fit(tiny_campaign.train)
    return models


class TestCurriculumShape:
    def test_lesson_one_is_fully_clean(self):
        curriculum = Curriculum()
        first = curriculum[0]
        assert first.is_baseline
        assert first.phi_percent == 0.0
        assert first.original_fraction == 1.0

    def test_fractions_sum_to_one(self):
        for lesson in Curriculum():
            attacked_fraction = 1.0 - lesson.original_fraction
            assert 0.0 <= attacked_fraction <= 1.0
            assert attacked_fraction + lesson.original_fraction == pytest.approx(1.0)

    def test_epsilon_fixed_at_0_1(self):
        assert {lesson.epsilon for lesson in Curriculum()} == {0.1}

    def test_phi_monotone_over_lessons(self):
        phis = [lesson.phi_percent for lesson in Curriculum()]
        assert phis == sorted(phis)
        assert phis[-1] == 100.0

    def test_defense_curriculum_matches_calloc_default_shape(self):
        """The defense trains through the exact schedule CALLOC uses."""
        defense = CurriculumAdversarialDefense()
        lessons = defense.curriculum().lessons
        reference = Curriculum().lessons
        assert lessons == reference


class TestLessonBuilderPerModel:
    @pytest.mark.parametrize("name", sorted(GRADIENT_CAPABLE))
    def test_lesson_one_returns_untouched_copies(self, name, fitted_models, tiny_campaign):
        model = fitted_models[name]
        features = tiny_campaign.train.features
        labels = tiny_campaign.train.labels
        builder = LessonBuilder(seed=0)
        lesson_features, lesson_labels = builder.build(
            Curriculum()[0], features, labels, model
        )
        np.testing.assert_array_equal(lesson_features, features)
        np.testing.assert_array_equal(lesson_labels, labels)
        assert lesson_features is not features  # defensive copy

    @pytest.mark.parametrize("name", sorted(GRADIENT_CAPABLE))
    def test_attack_lesson_respects_fractions_and_epsilon(
        self, name, fitted_models, tiny_campaign
    ):
        model = fitted_models[name]
        features = tiny_campaign.train.features
        labels = tiny_campaign.train.labels
        lesson = Curriculum()[5]  # mid-curriculum: ø > 0, original < 1
        builder = LessonBuilder(seed=0)
        lesson_features, lesson_labels = builder.build(lesson, features, labels, model)

        np.testing.assert_array_equal(lesson_labels, labels)
        changed = (lesson_features != features).any(axis=1)
        expected_attacked = int(round((1.0 - lesson.original_fraction) * len(features)))
        # FGSM may leave a selected row untouched when its targeted gradients
        # vanish, so the changed count is bounded by — not equal to — the
        # lesson's attacked share.
        assert 1 <= changed.sum() <= expected_attacked
        # Unchanged rows are bit-identical originals; changed rows stay inside
        # the lesson's ε-ball and the valid feature box.
        deltas = np.abs(lesson_features - features)
        assert deltas[~changed].max(initial=0.0) == 0.0
        assert deltas.max() <= lesson.epsilon + 1e-12
        assert lesson_features.min() >= 0.0 and lesson_features.max() <= 1.0

    @pytest.mark.parametrize("name", sorted(GRADIENT_CAPABLE))
    def test_builder_is_deterministic_per_seed(self, name, fitted_models, tiny_campaign):
        model = fitted_models[name]
        features = tiny_campaign.train.features
        labels = tiny_campaign.train.labels
        lesson = Curriculum()[3]
        first, _ = LessonBuilder(seed=7).build(lesson, features, labels, model)
        second, _ = LessonBuilder(seed=7).build(lesson, features, labels, model)
        np.testing.assert_array_equal(first, second)
        third, _ = LessonBuilder(seed=8).build(lesson, features, labels, model)
        assert (first != third).any()


class TestCurriculumDefenseApplicability:
    def test_rejects_gradient_free_models(self, tiny_campaign):
        knn = make_localizer("KNN", k=3)
        with pytest.raises(DefenseError, match="gradient-capable"):
            CurriculumAdversarialDefense().wrap_training(knn, tiny_campaign.train)

    @pytest.mark.parametrize("name", ["DNN", "CNN", "ANVIL", "AdvLoc"])
    def test_hardens_every_neural_baseline(self, name, tiny_campaign):
        params = dict(GRADIENT_CAPABLE[name])
        params["epochs"] = 4
        model = make_localizer(name, **params)
        defense = CurriculumAdversarialDefense(num_lessons=3, epochs_per_lesson=1)
        fitted = defense.wrap_training(model, tiny_campaign.train)
        assert fitted is model
        predictions = fitted.predict(tiny_campaign.test_for("S7").features)
        assert predictions.shape == (len(tiny_campaign.test_for("S7")),)

    def test_calloc_native_curriculum_is_bit_identical(self, tiny_campaign):
        """CALLOC under the defense is the unchanged native curriculum path."""
        params = GRADIENT_CAPABLE["CALLOC"]
        undefended = make_localizer("CALLOC", **params).fit(tiny_campaign.train)
        defended = CurriculumAdversarialDefense().wrap_training(
            make_localizer("CALLOC", **params), tiny_campaign.train
        )
        test = tiny_campaign.test_for("S7").features
        np.testing.assert_array_equal(
            defended.predict(test), undefended.predict(test)
        )
        np.testing.assert_array_equal(
            defended.predict_proba(test), undefended.predict_proba(test)
        )
