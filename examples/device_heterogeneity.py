#!/usr/bin/env python3
"""Device-heterogeneity study: train on one smartphone, localize with six.

The paper's campaign collects the offline database with a OnePlus 3 and tests
with six different smartphones whose Wi-Fi chipsets report RSS differently
(Table I).  This example quantifies that gap for CALLOC and two baselines and
shows the per-device error profile (the "rows" of the paper's Fig. 4
heatmaps).  Models are built by registry name, and each device's errors are
computed with a single prediction pass via ``error_summary``.

Run with:  python examples/device_heterogeneity.py
"""

from __future__ import annotations

from repro import make_localizer
from repro.data import CampaignConfig, collect_campaign, device_acronyms, paper_building
from repro.eval import ascii_table


def main() -> None:
    building = paper_building("Building 4", rp_granularity_m=2.0)
    campaign = collect_campaign(building, CampaignConfig(seed=9))
    print(f"{building.name}: {campaign.num_aps} APs, {campaign.num_classes} reference points")
    print(f"Offline database collected with {campaign.config.training_device}\n")

    models = {
        "CALLOC": make_localizer("CALLOC", epochs_per_lesson=8, seed=0),
        "ANVIL": make_localizer("ANVIL", epochs=40, seed=0),
        "KNN": make_localizer("KNN", k=5),
    }
    for model in models.values():
        model.fit(campaign.train)

    # One prediction pass per (model, device); reused for both tables below.
    per_device = {
        name: {
            device: model.error_summary(campaign.test_for(device)).mean
            for device in device_acronyms()
        }
        for name, model in models.items()
    }

    rows = []
    for device in device_acronyms():
        rows.append([device] + [per_device[name][device] for name in models])
    print("Mean localization error (m) per test device (no attack):")
    print(ascii_table(rows, headers=["device"] + list(models)))
    print()

    # Heterogeneity penalty: error on the worst foreign device relative to the
    # training device itself.
    print("Device-heterogeneity penalty (worst foreign device / training device):")
    penalty_rows = []
    for name in models:
        errors = per_device[name]
        training_error = max(errors[campaign.config.training_device], 1e-9)
        worst_device = max(errors, key=errors.get)
        penalty_rows.append(
            [name, worst_device, errors[worst_device], errors[worst_device] / training_error]
        )
    print(ascii_table(penalty_rows, headers=["model", "worst device", "error (m)", "penalty x"]))


if __name__ == "__main__":
    main()
