#!/usr/bin/env python3
"""Canary a new model version behind a live endpoint, then hot-promote it.

This example walks the zero-downtime deployment loop of the asyncio serving
tier (``repro.serve.aio``):

1. publish ``knn`` v1 to a versioned :class:`~repro.serve.ModelStore` and
   point the ``prod`` tag at it;
2. start the asyncio front end with a **shadow route**: every request to
   ``building-1/knn`` is served by ``knn@prod`` while a deterministic
   fraction is also mirrored onto the candidate ``knn@v2`` (seeded hash of
   the fingerprint bytes — no RNG, reproducible across workers);
3. send traffic and read the paired primary-vs-shadow comparison from
   ``GET /metrics`` (latency, guard flags, label disagreement);
4. judge the canary with :func:`repro.serve.aio.routing.canary_ok` — the
   same gate behind ``repro store promote --if-canary-ok``;
5. **hot-promote**: flip the ``prod`` tag to v2 while the server keeps
   running — the gateway watches the store manifest, so the very next
   request serves v2 with zero dropped requests and no restart;
6. roll back and verify the predictions are byte-identical to step 1.

The same flow runs from the CLI against a standalone server::

    repro serve --aio --route "building-1/knn=knn@prod,shadow=knn@v2,fraction=0.2"
    repro store promote knn@v2 prod --if-canary-ok \\
        --metrics-url http://127.0.0.1:8080 --min-requests 50

Run with:  python examples/canary_promote.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro import LocalizationService, ModelStore, ServiceClient
from repro.data import CampaignConfig, collect_campaign, paper_building
from repro.serve.aio.routing import canary_ok
from repro.serve.aio.server import AioServerThread


def main() -> None:
    # ------------------------------------------------------------------
    # Offline phase: collect one campaign, publish v1, train a candidate.
    # ------------------------------------------------------------------
    building = paper_building("Building 1")
    campaign = collect_campaign(building, CampaignConfig(seed=11))
    store = ModelStore(tempfile.mkdtemp(prefix="repro-store-"))

    v1 = store.publish(
        LocalizationService("KNN", params={"k": 3}).fit(campaign.train),
        "knn",
        tags=("prod",),
    )
    v2 = store.publish(
        LocalizationService("KNN", params={"k": 1}).fit(campaign.train), "knn"
    )
    print(f"published {v1.ref} (tag: prod) and candidate {v2.ref}")

    queries = campaign.test_for("S7").features

    # ------------------------------------------------------------------
    # Online phase: serve v1, mirror 50% of traffic onto the v2 candidate.
    # watch_interval_s=0 re-checks the store manifest on every request, so
    # a promote is visible immediately (raise it to throttle the stat call).
    # ------------------------------------------------------------------
    # The primary ref MUST be the mutable tag (knn@prod), not the pinned
    # version — promotion works by re-pinning what the tag points at.
    routes = {"building-1/knn": f"knn@prod,shadow={v2.ref},fraction=0.5"}
    with AioServerThread(store, routes=routes, watch_interval_s=0.0) as server:
        with ServiceClient(server.base_url) as client:
            baseline = client.localize_document(queries, model="building-1/knn")
            print(f"serving {baseline['ref']} "
                  f"(keep-alive over {client.connections_opened} connection)")

            # Step 3: traffic. Each request deterministically hashes into
            # the mirrored fraction or not; mirrored copies are scored by
            # BOTH versions so the comparison is paired.
            for index in range(60):
                client.localize(queries[index % len(queries)], model="building-1/knn")
            server.drain_shadow_tasks()

            # Step 4: judge the canary from the live metrics document.
            shadow = client.metrics()["shadow"]["building-1/knn"]
            print(f"canary: {shadow['mirrored']}/{shadow['requests']} requests "
                  f"mirrored, {shadow['shadow_errors']} errors, "
                  f"label disagreement {shadow['mismatch_rate']}")
            ok, reasons = canary_ok(shadow, min_requests=20)
            print(f"canary_ok -> {ok}" + (f" ({'; '.join(reasons)})" if reasons else ""))

            # Step 5: hot promote. The server is not restarted; the pinned
            # ref flips atomically on the next request.
            if ok:
                store.promote(v2.ref, "prod")
                promoted = client.localize_document(queries, model="building-1/knn")
                print(f"promoted: endpoint now serves {promoted['ref']}")

                # Step 6: rollback is just another promote — byte-identical.
                store.promote(v1.ref, "prod")
                rolled = client.localize_document(queries, model="building-1/knn")
                identical = np.array_equal(rolled["labels"], baseline["labels"])
                print(f"rolled back to {rolled['ref']}; "
                      f"predictions byte-identical to v1: {identical}")

    print("done — no request was dropped across either flip")


if __name__ == "__main__":
    main()
