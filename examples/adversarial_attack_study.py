#!/usr/bin/env python3
"""Adversarial attack study: FGSM vs PGD vs MIM across attack strengths.

Reproduces a miniature version of the paper's Figs. 4/5 sweep on one building:
CALLOC is attacked with all three white-box crafting methods while ε and the
fraction of compromised access points (ø) vary, and the resulting localization
errors are rendered as text tables.

Run with:  python examples/adversarial_attack_study.py
"""

from __future__ import annotations

import numpy as np

from repro import make_attack, make_localizer
from repro.attacks import ThreatModel, attack_dataset
from repro.data import CampaignConfig, collect_campaign, paper_building
from repro.eval import ascii_table


def main() -> None:
    building = paper_building("Building 3", rp_granularity_m=2.0)
    campaign = collect_campaign(building, CampaignConfig(seed=5))
    print(f"Building 3: {campaign.num_aps} APs, {campaign.num_classes} reference points")

    calloc = make_localizer("CALLOC", epochs_per_lesson=8, seed=0)
    calloc.fit(campaign.train)
    online = campaign.test_all_devices()
    print(f"Clean mean error over all devices: {calloc.mean_error(online):.2f} m\n")

    # ------------------------------------------------------------------
    # Sweep attack method x epsilon at a fixed fraction of attacked APs.
    # ------------------------------------------------------------------
    epsilons = (0.1, 0.2, 0.3, 0.4, 0.5)
    rows = []
    for method in ("FGSM", "PGD", "MIM"):
        row = [method]
        for epsilon in epsilons:
            threat = ThreatModel(epsilon=epsilon, phi_percent=50.0, seed=11)
            attacked = attack_dataset(online, make_attack(method, threat), calloc)
            row.append(calloc.mean_error(attacked))
        rows.append(row)
    print("Mean error (m) vs attack strength (phi = 50% of APs):")
    print(ascii_table(rows, headers=["attack"] + [f"eps={e}" for e in epsilons]))
    print()

    # ------------------------------------------------------------------
    # Sweep the number of attacked APs at the curriculum's training epsilon.
    # ------------------------------------------------------------------
    phis = (10.0, 25.0, 50.0, 75.0, 100.0)
    rows = []
    for method in ("FGSM", "PGD", "MIM"):
        row = [method]
        for phi in phis:
            errors = []
            for seed in (11, 13):
                threat = ThreatModel(epsilon=0.1, phi_percent=phi, seed=seed)
                attacked = attack_dataset(online, make_attack(method, threat), calloc)
                errors.append(calloc.mean_error(attacked))
            row.append(float(np.mean(errors)))
        rows.append(row)
    print("Mean error (m) vs attacked-AP fraction (epsilon = 0.1):")
    print(ascii_table(rows, headers=["attack"] + [f"phi={p:.0f}%" for p in phis]))


if __name__ == "__main__":
    main()
