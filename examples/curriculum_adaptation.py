#!/usr/bin/env python3
"""Inside the adaptive curriculum: lessons, back-offs and the NC ablation.

This example looks *inside* CALLOC's training process:

* it prints the 10-lesson curriculum (ø escalation, original-data share),
* trains CALLOC with the adaptive controller and shows where the controller
  reverted to best weights and eased the lesson difficulty (ø back-off),
* trains the "NC" (no curriculum) ablation for the same epoch budget, and
* compares the robustness of both variants under a PGD attack.

Run with:  python examples/curriculum_adaptation.py
"""

from __future__ import annotations

from repro import make_attack, make_localizer
from repro.attacks import ThreatModel, attack_dataset
from repro.core import Curriculum
from repro.data import CampaignConfig, collect_campaign, paper_building
from repro.eval import ascii_table


def main() -> None:
    print("The CALLOC curriculum (Sec. IV.A):")
    print(Curriculum().describe())
    print()

    building = paper_building("Building 2", rp_granularity_m=2.0)
    campaign = collect_campaign(building, CampaignConfig(seed=13))

    calloc = make_localizer("CALLOC", epochs_per_lesson=8, seed=0)
    calloc.fit(campaign.train)
    print("Adaptive curriculum training (per-lesson summary):")
    print(calloc.training_report.summary())
    print(
        f"\nTotal epochs: {calloc.training_report.total_epochs}, "
        f"adaptive back-offs: {calloc.training_report.total_backoffs}\n"
    )

    no_curriculum = make_localizer("CALLOC", epochs_per_lesson=8, use_curriculum=False, seed=0)
    no_curriculum.fit(campaign.train)

    online = campaign.test_all_devices()
    threat = ThreatModel(epsilon=0.2, phi_percent=60.0, seed=21)
    rows = []
    for name, model in (("CALLOC (curriculum)", calloc), ("NC (no curriculum)", no_curriculum)):
        attacked = attack_dataset(online, make_attack("PGD", threat), model)
        rows.append([name, model.mean_error(online), model.mean_error(attacked)])
    print("Clean vs PGD-attacked mean error (m):")
    print(ascii_table(rows, headers=["variant", "clean", "PGD eps=0.2, phi=60%"]))


if __name__ == "__main__":
    main()
