#!/usr/bin/env python3
"""Quickstart: train CALLOC on a simulated building and localize under attack.

This example walks through the full offline/online pipeline of the paper on a
single building, entirely through the public API:

1. simulate a fingerprint collection campaign (offline phase, OP3 device);
2. stand up a :class:`~repro.api.LocalizationService` around CALLOC (any
   registered model name works — see ``python -m repro list-models``);
3. localize online fingerprints from a different smartphone — first clean,
   then under a white-box FGSM man-in-the-middle attack;
4. compare against an undefended DNN baseline built from the same registry;
5. save the fitted service and reload it bit-for-bit.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import LocalizationService, make_attack, make_localizer
from repro.attacks import ThreatModel, attack_dataset
from repro.data import CampaignConfig, collect_campaign, paper_building


def main() -> None:
    # ------------------------------------------------------------------
    # Offline phase: survey the building with the OP3 device.
    # A 2 m reference-point granularity keeps this example fast; the paper
    # uses 1 m (pass rp_granularity_m=1.0 to reproduce it).
    # ------------------------------------------------------------------
    building = paper_building("Building 1", rp_granularity_m=2.0)
    campaign = collect_campaign(building, CampaignConfig(seed=7))
    print(campaign.summary())
    print()

    # ------------------------------------------------------------------
    # Train CALLOC through its 10-lesson adversarial curriculum, behind the
    # online-serving facade.
    # ------------------------------------------------------------------
    service = LocalizationService(
        "CALLOC", params={"epochs_per_lesson": 8, "seed": 0}
    )
    service.fit(campaign.train)
    calloc = service.localizer
    print("CALLOC curriculum training summary:")
    print(calloc.training_report.summary())
    print()
    print("Trainable parameter budget:", calloc.parameter_report())
    print()

    # An undefended DNN baseline trained on the same database, built by name.
    dnn = make_localizer("DNN", epochs=40, seed=0)
    dnn.fit(campaign.train)

    # ------------------------------------------------------------------
    # Online phase: localize scans from a different smartphone (Galaxy S7).
    # ------------------------------------------------------------------
    online = campaign.test_for("S7")
    result = service.localize(online)
    print(f"Clean online fingerprints ({online.num_samples} scans from S7):")
    print(
        f"  CALLOC mean error: {service.evaluate(online).mean:.2f} m "
        f"(mean self-estimate {result.error_estimate.mean():.2f} m)"
    )
    print(f"  DNN    mean error: {dnn.error_summary(online).mean:.2f} m")
    print()

    # ------------------------------------------------------------------
    # Channel-side MITM attack: FGSM perturbations on 50% of the APs.
    # ------------------------------------------------------------------
    threat = ThreatModel(epsilon=0.3, phi_percent=50.0, seed=3)
    attacked_for_calloc = attack_dataset(online, make_attack("FGSM", threat), calloc)
    attacked_for_dnn = attack_dataset(online, make_attack("FGSM", threat), dnn)
    print("Under white-box FGSM attack (epsilon=0.3, phi=50% of APs):")
    print(f"  CALLOC mean error: {service.evaluate(attacked_for_calloc).mean:.2f} m")
    print(f"  DNN    mean error: {dnn.error_summary(attacked_for_dnn).mean:.2f} m")
    print()

    # ------------------------------------------------------------------
    # Persist the fitted service and reload it: identical predictions.
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = service.save(Path(tmp) / "calloc_service.npz")
        restored = LocalizationService.load(path)
        same = (restored.localize(online).labels == result.labels).all()
        print(f"Saved to {path.name}; reloaded predictions identical: {bool(same)}")


if __name__ == "__main__":
    main()
