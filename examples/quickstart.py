#!/usr/bin/env python3
"""Quickstart: train CALLOC on a simulated building and localize under attack.

This example walks through the full offline/online pipeline of the paper on a
single building:

1. simulate a fingerprint collection campaign (offline phase, OP3 device);
2. train the CALLOC localizer with its adversarial curriculum;
3. localize online fingerprints from a different smartphone — first clean,
   then under a white-box FGSM man-in-the-middle attack;
4. compare against an undefended DNN baseline.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.attacks import FGSMAttack, ThreatModel, attack_dataset
from repro.baselines import DNNLocalizer
from repro.core import CALLOC
from repro.data import CampaignConfig, collect_campaign, paper_building


def main() -> None:
    # ------------------------------------------------------------------
    # Offline phase: survey the building with the OP3 device.
    # A 2 m reference-point granularity keeps this example fast; the paper
    # uses 1 m (pass rp_granularity_m=1.0 to reproduce it).
    # ------------------------------------------------------------------
    building = paper_building("Building 1", rp_granularity_m=2.0)
    campaign = collect_campaign(building, CampaignConfig(seed=7))
    print(campaign.summary())
    print()

    # ------------------------------------------------------------------
    # Train CALLOC through its 10-lesson adversarial curriculum.
    # ------------------------------------------------------------------
    calloc = CALLOC(epochs_per_lesson=8, seed=0)
    calloc.fit(campaign.train)
    print("CALLOC curriculum training summary:")
    print(calloc.training_report.summary())
    print()
    print("Trainable parameter budget:", calloc.parameter_report())
    print()

    # An undefended DNN baseline trained on the same database.
    dnn = DNNLocalizer(epochs=40, seed=0)
    dnn.fit(campaign.train)

    # ------------------------------------------------------------------
    # Online phase: localize scans from a different smartphone (Galaxy S7).
    # ------------------------------------------------------------------
    online = campaign.test_for("S7")
    print(f"Clean online fingerprints ({online.num_samples} scans from S7):")
    print(f"  CALLOC mean error: {calloc.mean_error(online):.2f} m")
    print(f"  DNN    mean error: {dnn.mean_error(online):.2f} m")
    print()

    # ------------------------------------------------------------------
    # Channel-side MITM attack: FGSM perturbations on 50% of the APs.
    # ------------------------------------------------------------------
    threat = ThreatModel(epsilon=0.3, phi_percent=50.0, seed=3)
    attacked_for_calloc = attack_dataset(online, FGSMAttack(threat), calloc)
    attacked_for_dnn = attack_dataset(online, FGSMAttack(threat), dnn)
    print("Under white-box FGSM attack (epsilon=0.3, phi=50% of APs):")
    print(f"  CALLOC mean error: {calloc.mean_error(attacked_for_calloc):.2f} m")
    print(f"  DNN    mean error: {dnn.mean_error(attacked_for_dnn):.2f} m")


if __name__ == "__main__":
    main()
