#!/usr/bin/env python3
"""Telemetry tour: spans, metrics, the durable event log, and Prometheus.

This example walks the whole observability subsystem (``repro.obs``) in one
script:

1. run a traced experiment through the engine and watch every work unit
   land in the durable event log under ``<cache>/telemetry/``;
2. replay the log: nested spans with per-unit cache attribution, exactly
   what ``repro obs spans`` renders;
3. serve a model over HTTP and scrape ``/metrics?format=prometheus`` —
   the same registry the JSON ``/metrics`` document reads;
4. add a custom span + metric of your own around application code;
5. show the opt-out (``REPRO_TELEMETRY=0`` / ``trace.set_enabled(False)``)
   leaving zero trace.

The same flows run from the CLI as::

    repro run --models KNN --profile quick
    repro obs summary
    repro obs spans --json
    repro obs tail --follow --kind span

Run with:  python examples/telemetry_tour.py
"""

from __future__ import annotations

import json
import tempfile
import threading
import urllib.request
from pathlib import Path

from repro.api import PROFILES, ExperimentSpec, LocalizationService, run_experiment
from repro.eval.engine import ArtifactCache, simulate_campaign
from repro.obs import events, trace
from repro.obs.metrics import REGISTRY
from repro.serve import ModelStore, ServiceClient, create_server


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A traced engine run with a durable event sink.
    #
    # The CLI wires this automatically (`repro run` configures the sink
    # under the active cache directory); embedding code does it in two
    # lines.  Everything is on by default — REPRO_TELEMETRY=0 or
    # `--no-telemetry` opts out.
    # ------------------------------------------------------------------
    telemetry_dir = Path(tempfile.mkdtemp(prefix="repro-telemetry-"))
    sink = events.configure_sink(telemetry_dir)

    spec = ExperimentSpec(
        models=("KNN",),
        profile="quick",
        devices=("OP3",),
        attack_methods=("FGSM",),
        epsilons=(0.1,),
        phi_percents=(10.0,),
    )
    result = run_experiment(spec, cache=False)
    sink.flush()  # the sink's writer thread drains on a short interval
    print(f"experiment done: {len(result.to_records())} result rows")

    # ------------------------------------------------------------------
    # 2. Replay the event log: every engine unit became one span record.
    # The log is plain JSONL segments — crash-safe appends, readable with
    # nothing but the standard library (or `repro obs tail`).
    # ------------------------------------------------------------------
    spans = list(events.read_events(telemetry_dir, kind="span"))
    print(f"\n{len(spans)} spans in {telemetry_dir}:")
    for record in spans:
        attrs = record["attrs"]
        print(
            f"  {record['name']:<14} {record['duration_s'] * 1e3:8.2f}ms"
            f"  kind={attrs.get('kind', '-'):<9}"
            f" cache_hits={attrs.get('cache_hits', '-')}"
            f" cache_misses={attrs.get('cache_misses', '-')}"
        )

    # ------------------------------------------------------------------
    # 3. Prometheus exposition from the serving tier.  The default
    # /metrics stays the JSON document; `?format=prometheus` negotiates
    # the text scrape format from the very same registry.
    # ------------------------------------------------------------------
    store = ModelStore(tempfile.mkdtemp(prefix="repro-store-"))
    service = LocalizationService.trained_on(
        "Building 1", model="KNN", profile="quick", cache=False
    )
    store.publish(service, "knn", tags=("prod",))

    server = create_server(store, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        config = PROFILES["quick"]()
        campaign, _ = simulate_campaign(
            "Building 1", config, ArtifactCache.coerce(False)
        )
        queries = campaign.test_for(config.devices[0]).features[:4]
        with ServiceClient(base) as client:
            client.localize(queries, model="knn")  # move the HTTP counters
        with urllib.request.urlopen(f"{base}/metrics?format=prometheus") as resp:
            exposition = resp.read().decode()
        lines = [l for l in exposition.splitlines() if "repro_http" in l]
        print(f"\nprometheus exposition ({base}/metrics?format=prometheus):")
        for line in lines[:6]:
            print(f"  {line}")
    finally:
        server.shutdown()
        server.app.close()
        server.server_close()

    # ------------------------------------------------------------------
    # 4. Your own spans and metrics ride the same rails.
    # ------------------------------------------------------------------
    jobs = REGISTRY.counter("tour_jobs_total", "Tour jobs", ("outcome",))
    with trace.span("tour.job", batch="demo") as sp:
        sp.set(items=3)
        jobs.labels(outcome="ok").inc()
    snapshot = REGISTRY.snapshot()["tour_jobs_total"]
    print(f"\ncustom metric snapshot: {json.dumps(snapshot)}")
    sink.flush()
    last = list(events.read_events(telemetry_dir, kind="span"))[-1]
    print(f"custom span persisted: {last['name']} attrs={last['attrs']}")

    # ------------------------------------------------------------------
    # 5. Opt-out: disabled tracing is a shared no-op — nothing recorded,
    # nothing allocated, and seeded computation is untouched either way
    # (bench_obs.py proves bit-identity with tracing on).
    # ------------------------------------------------------------------
    sink.flush()
    before = len(list(events.read_events(telemetry_dir)))
    trace.set_enabled(False)
    with trace.span("tour.invisible"):
        pass
    trace.set_enabled(None)
    events.configure_sink(None)  # flush + close the sink
    after = len(list(events.read_events(telemetry_dir)))
    print(f"\ndisabled span recorded {after - before} events (expected 0)")


if __name__ == "__main__":
    main()
