#!/usr/bin/env python3
"""Defended-training quickstart: harden a DNN, publish it, serve it guarded.

The defense subsystem (``repro.defenses``) completes the experiment matrix —
model × attack × scenario × **defense** — and this example walks its full
production path:

1. train a DNN localizer under the paper's *curriculum adversarial training*
   (extracted from CALLOC and generalized to any gradient-capable model) and
   compare its robustness against the undefended twin;
2. attach the statistical *adversarial-fingerprint detector* as an inference
   guard, calibrated on the offline survey;
3. publish the hardened service to a versioned
   :class:`~repro.serve.ModelStore` — defense provenance lands in the
   manifest, the guard travels inside the artifact;
4. serve it and watch the guard flag adversarial fingerprints on
   ``GET /metrics``.

The same flow runs from the command line as::

    repro run --models DNN --defense none curriculum
    repro store publish --building "Building 1" --model DNN --defense detector
    repro serve --port 8080

Run with:  python examples/defended_training.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro import LocalizationService, ModelStore
from repro.api import PROFILES
from repro.attacks import FGSMAttack, ThreatModel
from repro.defenses import CurriculumAdversarialDefense, DefenseSpec
from repro.eval.engine import simulate_campaign
from repro.registry import make_localizer


def main() -> None:
    # ------------------------------------------------------------------
    # Offline phase: the quick-profile campaign for Building 1.
    # ------------------------------------------------------------------
    config = PROFILES["quick"]()
    campaign, _ = simulate_campaign("Building 1", config, None)
    test = campaign.test_for("OP3")

    # ------------------------------------------------------------------
    # 1. Harden a DNN with curriculum adversarial training.  The defense
    #    walks any gradient-capable localizer (DNN/CNN/ANVIL/AdvLoc) through
    #    the same 10-lesson FGSM self-attack schedule CALLOC trains with.
    # ------------------------------------------------------------------
    undefended = make_localizer("DNN", epochs=40, seed=0).fit(campaign.train)
    defended = CurriculumAdversarialDefense().wrap_training(
        make_localizer("DNN", epochs=40, seed=0), campaign.train
    )

    attack = FGSMAttack(ThreatModel(epsilon=0.3, phi_percent=50.0, seed=11))
    for name, model in (("undefended", undefended), ("curriculum", defended)):
        clean = model.error_summary(test)
        adversarial = attack.perturb(test.features, test.labels, model)
        from repro.data.fingerprint import denormalize_rss

        attacked = model.error_summary(test.with_rss(denormalize_rss(adversarial)))
        print(
            f"DNN [{name:>10}]  clean {clean.mean:5.2f} m   "
            f"FGSM(0.3, 50%) {attacked.mean:5.2f} m"
        )

    # ------------------------------------------------------------------
    # 2. Wrap the hardened model in a service and attach the online guard.
    # ------------------------------------------------------------------
    service = LocalizationService("DNN", params={"epochs": 40, "seed": 0})
    service.localizer = defended
    service._rp_positions = np.asarray(campaign.train.rp_positions, dtype=np.float64)
    service._num_aps = int(campaign.train.num_aps)
    service.defense_name = "curriculum"
    service.attach_guard(DefenseSpec.create("detector"), dataset=campaign.train)

    # ------------------------------------------------------------------
    # 3. Publish: provenance in the manifest, guard inside the artifact.
    # ------------------------------------------------------------------
    store = ModelStore(tempfile.mkdtemp(prefix="repro-store-"))
    version = store.publish(service, "dnn-hardened", tags=("prod",))
    print(f"\npublished {version.ref} (defense: {version.defense})")

    restored = store.resolve("dnn-hardened@prod")
    assert restored.guard is not None, "guard must travel with the artifact"

    # ------------------------------------------------------------------
    # 4. The guard in action: clean queries pass, crafted ones get flagged.
    # ------------------------------------------------------------------
    clean_result = restored.localize(test.features)
    adversarial = FGSMAttack(
        ThreatModel(epsilon=0.5, phi_percent=100.0, seed=3)
    ).perturb(test.features, test.labels, defended)
    attacked_result = restored.localize(adversarial)
    print(
        f"guard verdicts: clean batch {int(clean_result.guard_flags.sum())}/"
        f"{len(clean_result)} flagged, attacked batch "
        f"{int(attacked_result.guard_flags.sum())}/{len(attacked_result)} flagged"
    )


if __name__ == "__main__":
    main()
