#!/usr/bin/env python3
"""Serving quickstart: publish a model to the store and query it over HTTP.

This example walks the full production serving flow:

1. train a localizer for one paper building through the cached execution
   engine (``LocalizationService.trained_on``);
2. publish it to a versioned :class:`~repro.serve.ModelStore` under a name
   and a ``prod`` tag;
3. start the ``repro serve`` HTTP API in-process (store → gateway →
   micro-batcher → JSON);
4. query it through the thin :class:`~repro.serve.ServiceClient` and verify
   the HTTP predictions are bit-identical to the direct service call;
5. inspect the serving metrics (per-endpoint latency, batching stats).

The same server runs standalone as::

    repro store publish --building "Building 1" --model KNN --tag prod
    repro serve --port 8080
    curl -s -X POST localhost:8080/v1/localize \
         -d '{"model": "knn@prod", "fingerprints": [[...]]}'

Run with:  python examples/serving_quickstart.py
"""

from __future__ import annotations

import tempfile
import threading

import numpy as np

from repro import LocalizationService, ModelStore, ServiceClient
from repro.api import PROFILES
from repro.data import CampaignConfig, collect_campaign, paper_building
from repro.serve import create_server


def main() -> None:
    # ------------------------------------------------------------------
    # Offline phase: train a model for Building 1 and publish it.
    # KNN keeps this example fast; any persistable registry model works
    # (CALLOC, DNN, CNN, ANVIL, AdvLoc — see `repro list-models`).
    # ------------------------------------------------------------------
    store_dir = tempfile.mkdtemp(prefix="repro-store-")
    store = ModelStore(store_dir)
    service = LocalizationService.trained_on(
        "Building 1", model="KNN", profile="quick", cache=False
    )
    version = store.publish(service, "knn", tags=("prod",))
    print(f"published {version.ref} (tags: {', '.join(version.tags)}) to {store_dir}")

    # The store is versioned and content-addressed: publishing again under a
    # new name reuses the identical artifact, and tags can be promoted later
    # (store.promote("knn@v1", "prod")) to roll a deployment back.
    restored = store.resolve("knn@prod")
    print(f"resolve('knn@prod') -> fitted {restored.model_name} service")

    # ------------------------------------------------------------------
    # Serve it: store -> gateway -> micro-batching -> JSON over HTTP.
    # Port 0 binds any free port; `repro serve` does the same standalone.
    # ------------------------------------------------------------------
    server = create_server(store, port=0, routes={"building-1/knn": "knn@prod"})
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    print(f"serving on http://{host}:{port}  (health: {client.health()['status']})")

    # ------------------------------------------------------------------
    # Online phase: localize live fingerprints through the HTTP API.
    # ------------------------------------------------------------------
    config = PROFILES["quick"]()
    campaign = collect_campaign(
        paper_building("Building 1", rp_granularity_m=config.rp_granularity_m),
        CampaignConfig(seed=config.campaign_seed),
    )
    queries = campaign.test_for("S7").features
    via_http = client.localize(queries, model="building-1/knn")
    direct = service.localize(queries)
    assert np.array_equal(via_http.labels, direct.labels)
    assert np.array_equal(via_http.coordinates, direct.coordinates)
    print(f"localized {len(via_http)} fingerprints over HTTP "
          f"(bit-identical to the direct call)")
    print(f"first prediction: RP {via_http.labels[0]} at "
          f"{via_http.coordinates[0].round(2)} m, "
          f"self-estimated error {via_http.error_estimate[0]:.2f} m")

    # ------------------------------------------------------------------
    # Observability: the catalog and per-endpoint serving metrics.
    # ------------------------------------------------------------------
    models = client.models()
    print(f"catalog: {[entry['name'] for entry in models['entries']]} "
          f"routes={models['routes']}")
    metrics = client.metrics()
    endpoint = metrics["gateway"]["endpoints"]["building-1/knn"]
    print(f"endpoint stats: {endpoint['requests']} request(s), "
          f"p50 {endpoint['latency_ms']['p50']} ms")

    server.shutdown()
    server.app.close()
    server.server_close()


if __name__ == "__main__":
    main()
